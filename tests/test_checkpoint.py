"""Checkpoint/resume: snapshots restore bitwise-identically.

The contract under test (ISSUE 4 acceptance): snapshot a session at round
``r``, resume it — in the same process, through a store round-trip, or in
a worker process — and the completed history (records, payments, policy
actions) equals the uninterrupted session's *exactly*.  Both the paper
preset's simulation game (with a churn + audit + psi-schedule pipeline)
and the Section V-C cluster testbed (with closed-loop guidance) are
pinned, under the serial and the process executor.
"""

from __future__ import annotations

import shutil

import pytest

from repro.api import (
    ExperimentStore,
    FMoreEngine,
    IncompleteRunError,
    Scenario,
    StoreError,
)

PAPER_POLICIES = {
    "churn": {"departure_prob": 0.25, "arrival_prob": 0.6},
    "audit_blacklist": {
        "defect_fraction": 0.3,
        "shortfall": 0.5,
        "strikes_to_ban": 1,
    },
    "selection": {
        "name": "per_node_psi",
        "schedule": "geometric",
        "psi0": 0.9,
        "decay": 0.9,
    },
}

# Guidance retunes every 2 rounds over 3, so a snapshot after round 1
# carries a *partially filled* observation window — the restore must
# preserve it for the round-2 alpha update to come out identical.
CLUSTER_POLICIES = {"guidance": {"target_mix": [2.0, 1.0, 1.0], "every": 2}}


def _paper_scenario(**overrides):
    """The paper preset's component mix at test scale, with policies."""
    defaults = dict(
        n_clients=10,
        k_winners=3,
        n_rounds=4,
        test_per_class=10,
        size_range=(60, 300),
        grid_size=33,
        model_width=0.12,
        image_size=14,
        batch_size=16,
        policies=PAPER_POLICIES,
    )
    return Scenario.from_preset(
        "paper",
        "mnist_o",
        schemes=("FMore", "RandFL"),
        seeds=(0,),
        **{**defaults, **overrides},
    )


def _cluster_scenario(**overrides):
    return Scenario.from_preset(
        "cluster_cifar10",
        seeds=(0,),
        n_clients=8,
        k_winners=3,
        n_rounds=3,
        test_per_class=8,
        size_range=(60, 240),
        model_width=0.15,
        grid_size=17,
        policies=CLUSTER_POLICIES,
        **overrides,
    )


@pytest.fixture(scope="module")
def paper_reference():
    scenario = _paper_scenario()
    return scenario, FMoreEngine().run(scenario)


@pytest.fixture(scope="module")
def cluster_reference():
    scenario = _cluster_scenario()
    return scenario, FMoreEngine().run(scenario)


@pytest.fixture(scope="module")
def interrupted_store(tmp_path_factory, paper_reference):
    """A store left behind by a 'crash' after round 2 of every cell."""
    scenario, _ = paper_reference
    root = tmp_path_factory.mktemp("interrupted")
    with pytest.raises(IncompleteRunError) as excinfo:
        FMoreEngine().run(
            scenario, store=root, checkpoint_every=1, stop_after=2
        )
    assert sorted(excinfo.value.cells) == [("FMore", 0), ("RandFL", 0)]
    return root


class TestSnapshotRestore:
    @pytest.mark.parametrize("scheme", ["FMore", "RandFL"])
    def test_paper_preset_bitwise(self, scheme, paper_reference):
        scenario, reference = paper_reference
        engine = FMoreEngine()
        session = engine.session(scenario, scheme, 0)
        next(session)
        next(session)
        checkpoint = session.snapshot()
        assert checkpoint.round_index == 2
        resumed = FMoreEngine().resume(checkpoint).run()
        assert resumed == reference.history(scheme)

    def test_cluster_preset_bitwise_mid_guidance_window(self, cluster_reference):
        scenario, reference = cluster_reference
        engine = FMoreEngine()
        session = engine.session(scenario, "FMore", 0)
        next(session)  # guidance window holds round 1; update due round 2
        checkpoint = session.snapshot()
        resumed = FMoreEngine().resume(checkpoint).run()
        assert resumed == reference.history("FMore")
        kinds = [
            a.kind for r in resumed.records for a in r.policy_actions
        ]
        assert "alpha_update" in kinds  # the closed loop actually ran

    def test_checkpoint_survives_the_store(self, tmp_path, paper_reference):
        """Disk round-trip (JSON + npz) loses nothing: still bitwise."""
        scenario, reference = paper_reference
        session = FMoreEngine().session(scenario, "FMore", 0)
        next(session)
        store = ExperimentStore(tmp_path)
        store.save_checkpoint(session.snapshot())
        loaded = store.load_checkpoint(scenario, "FMore", 0)
        assert loaded is not None and loaded.round_index == 1
        resumed = FMoreEngine().resume(loaded).run()
        assert resumed == reference.history("FMore")

    def test_snapshot_then_continue_does_not_disturb_the_donor(
        self, paper_reference
    ):
        """Taking a snapshot is observation, not interference."""
        scenario, reference = paper_reference
        session = FMoreEngine().session(scenario, "FMore", 0)
        next(session)
        session.snapshot()
        assert session.run() == reference.history("FMore")


class TestEngineResumeThroughStore:
    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_resumed_run_matches_uninterrupted(
        self, executor, tmp_path, interrupted_store, paper_reference
    ):
        scenario, reference = paper_reference
        root = tmp_path / "store"
        shutil.copytree(interrupted_store, root)
        plan = scenario.with_(
            execution={"executor": executor, "max_workers": 2}
        )
        resumed = FMoreEngine().run(plan, store=root, resume=True)
        assert resumed.histories == reference.histories
        # The finished cells are durable manifests; checkpoints are gone.
        store = ExperimentStore(root)
        for scheme in scenario.schemes:
            assert store.has_cell(scenario, scheme, 0)
            assert store.load_checkpoint(scenario, scheme, 0) is None

    def test_cluster_resume_under_process_executor(
        self, tmp_path, cluster_reference
    ):
        scenario, reference = cluster_reference
        root = tmp_path / "store"
        with pytest.raises(IncompleteRunError):
            FMoreEngine().run(scenario, store=root, stop_after=1)
        plan = scenario.with_(
            execution={"executor": "process", "max_workers": 2}
        )
        resumed = FMoreEngine().run(plan, store=root, resume=True)
        assert resumed.histories == reference.histories

    def test_manifests_equal_uninterrupted_store_bytes(
        self, tmp_path, interrupted_store, paper_reference
    ):
        """The resume-smoke CI contract: byte-identical manifests."""
        scenario, reference = paper_reference
        root = tmp_path / "resumed"
        shutil.copytree(interrupted_store, root)
        FMoreEngine().run(scenario, store=root, resume=True)
        pristine = reference.save(ExperimentStore(tmp_path / "pristine"))
        store = ExperimentStore(root)
        for scheme in scenario.schemes:
            a = store.manifest_path(scenario, scheme, 0).read_bytes()
            b = pristine.manifest_path(scenario, scheme, 0).read_bytes()
            assert a == b


class TestRestoreValidation:
    def test_restore_needs_fresh_session(self, paper_reference):
        scenario, _ = paper_reference
        engine = FMoreEngine()
        session = engine.session(scenario, "FMore", 0)
        next(session)
        checkpoint = session.snapshot()
        with pytest.raises(ValueError, match="fresh session"):
            session.restore(checkpoint)

    def test_wrong_cell_rejected(self, paper_reference):
        scenario, _ = paper_reference
        engine = FMoreEngine()
        session = engine.session(scenario, "FMore", 0)
        next(session)
        checkpoint = session.snapshot()
        other = engine.session(scenario, "RandFL", 0)
        with pytest.raises(StoreError, match="addresses cell"):
            other.restore(checkpoint)

    def test_wrong_scenario_rejected(self, paper_reference):
        scenario, _ = paper_reference
        session = FMoreEngine().session(scenario, "FMore", 0)
        next(session)
        checkpoint = session.snapshot()
        longer = _paper_scenario(n_rounds=6)
        fresh = FMoreEngine().session(longer, "FMore", 0)
        with pytest.raises(StoreError, match="would not reproduce"):
            fresh.restore(checkpoint)

    def test_corrupt_embedded_scenario_rejected(self, paper_reference):
        scenario, _ = paper_reference
        session = FMoreEngine().session(scenario, "FMore", 0)
        next(session)
        checkpoint = session.snapshot()
        checkpoint.scenario["n_rounds"] = 99  # no longer matches the hash
        with pytest.raises(StoreError, match="corrupt"):
            FMoreEngine().resume(checkpoint)

    def test_stop_after_requires_store(self, paper_reference):
        scenario, _ = paper_reference
        with pytest.raises(ValueError, match="store"):
            FMoreEngine().run(scenario, stop_after=1)
