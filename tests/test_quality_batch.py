"""Tests for the vectorised strategy-grid build (optimize_quality_batch).

The executor refactor made the grid build one NumPy pass; these tests pin
the contract that made that safe — bitwise equality with the per-point
optimiser on every cost family — plus the ``with_population`` clone and
``bid_batch`` edge cases the engine's solver cache leans on.
"""

import numpy as np
import pytest

from repro.core.costs import LinearCost, PowerCost, QuadraticCost
from repro.core.equilibrium import (
    EquilibriumSolver,
    optimize_quality,
    optimize_quality_batch,
    win_kernel,
)
from repro.core.scoring import AdditiveScore, MultiplicativeScore
from repro.core.valuation import PrivateValueModel, UniformTheta

BOUNDS = np.asarray([[0.01, 5.0], [0.05, 1.0]], dtype=float)
THETAS = np.linspace(0.1, 1.0, 257)


def _families():
    return [
        ("additive-linear", AdditiveScore([0.6, 0.4]), LinearCost([4.0, 2.0])),
        ("additive-quadratic", AdditiveScore([0.6, 0.4]), QuadraticCost([4.0, 2.0])),
        ("additive-power", AdditiveScore([0.6, 0.4]), PowerCost([4.0, 2.0], [1.0, 2.5])),
        ("additive-power-uniform", AdditiveScore([0.6, 0.4]), PowerCost([4.0, 2.0], 1.7)),
        # Non-closed-form: must agree via the numerical fallback.
        ("multiplicative-linear", MultiplicativeScore(2, 25.0), LinearCost([4.0, 2.0])),
    ]


class TestBatchEqualsLoop:
    @pytest.mark.parametrize("name,rule,cost", _families(), ids=[f[0] for f in _families()])
    def test_bitwise_equal_to_per_point(self, name, rule, cost):
        batch = optimize_quality_batch(rule, cost, THETAS, BOUNDS)
        loop = np.stack(
            [optimize_quality(rule, cost, float(t), BOUNDS) for t in THETAS]
        )
        assert batch.shape == (THETAS.size, 2)
        assert (batch == loop).all(), f"{name}: batch differs from per-point loop"

    def test_empty_thetas(self):
        out = optimize_quality_batch(
            AdditiveScore([0.5, 0.5]), LinearCost([1.0, 1.0]), [], BOUNDS
        )
        assert out.shape == (0, 2)

    def test_rejects_bad_bounds(self):
        rule, cost = AdditiveScore([0.5, 0.5]), LinearCost([1.0, 1.0])
        with pytest.raises(ValueError, match="bounds"):
            optimize_quality_batch(rule, cost, [0.5], [[0.0, 1.0]])
        with pytest.raises(ValueError, match="lo <= hi"):
            optimize_quality_batch(rule, cost, [0.5], [[1.0, 0.0], [0.0, 1.0]])
        with pytest.raises(ValueError, match="1-D"):
            optimize_quality_batch(rule, cost, [[0.5]], BOUNDS)

    def test_solver_grid_matches_per_point_build(self):
        """_build_tables now uses the batch path; the tables must be the
        exact grids the per-point loop produced."""
        solver = EquilibriumSolver(
            AdditiveScore([0.4, 0.3]),
            QuadraticCost([0.25, 0.5]),
            PrivateValueModel(UniformTheta(0.1, 1.0), 20, 5),
            [[0.0, 1.0], [0.0, 1.0]],
            grid_size=129,
        )
        expected = np.stack(
            [
                optimize_quality(
                    solver.quality_rule, solver.cost, float(t), solver.quality_bounds
                )
                for t in solver.theta_grid
            ]
        )
        assert (solver.quality_grid == expected).all()


@pytest.fixture(scope="module")
def solver():
    return EquilibriumSolver(
        MultiplicativeScore(2, 25.0),
        LinearCost([4.0, 2.0]),
        PrivateValueModel(UniformTheta(0.1, 1.0), 30, 6),
        BOUNDS,
        grid_size=65,
    )


class TestWithPopulationClones:
    def test_quality_tables_shared_not_copied(self, solver):
        clone = solver.with_population(n_nodes=50, k_winners=10)
        assert clone.theta_grid is solver.theta_grid
        assert clone.quality_grid is solver.quality_grid
        assert clone.u0_grid is solver.u0_grid
        assert clone.u_incr is solver.u_incr
        assert clone.h_grid is solver.h_grid
        assert clone.model.n_nodes == 50
        assert clone.model.k_winners == 10

    def test_winning_kernel_refreshed(self, solver):
        clone = solver.with_population(k_winners=solver.model.k_winners + 5)
        expected = win_kernel(
            clone.h_grid,
            clone.model.n_nodes,
            clone.model.k_winners,
            clone.win_model,
        )
        assert (clone.g_grid == expected).all()
        assert not np.array_equal(clone.g_grid, solver.g_grid)

    def test_margin_cache_isolated(self, solver):
        # Populate the original's cache, then clone: the clone must start
        # empty and filling it must not leak entries back.
        solver.margin(0.5)
        assert solver._margin_cache
        before = dict(solver._margin_cache)
        clone = solver.with_population(n_nodes=60)
        assert clone._margin_cache == {}
        clone.margin(0.5)
        assert clone._margin_cache
        key = next(iter(clone._margin_cache))
        assert solver._margin_cache.keys() == before.keys()
        assert solver._margin_cache[key] is not clone._margin_cache[key]

    def test_clone_payments_differ_with_population(self, solver):
        """More competition lowers the equilibrium payment (Theorem 2)."""
        crowded = solver.with_population(n_nodes=300)
        assert crowded.payment(0.3) < solver.payment(0.3)

    def test_default_clone_matches_original(self, solver):
        clone = solver.with_population()
        assert (clone.g_grid == solver.g_grid).all()
        assert clone.payment(0.4) == solver.payment(0.4)


class TestBidBatchEdges:
    def test_empty_thetas_uncapped(self, solver):
        qualities, payments = solver.bid_batch(np.empty(0))
        assert qualities.shape == (0, 2)
        assert payments.shape == (0,)

    def test_empty_thetas_with_costs_and_caps(self, solver):
        qualities, payments, costs = solver.bid_batch(
            np.empty(0), capacities=np.empty((0, 2)), with_costs=True
        )
        assert qualities.shape == (0, 2)
        assert payments.shape == (0,)
        assert costs.shape == (0,)

    def test_empty_thetas_skip_support_check(self, solver):
        # An empty vector has no min/max; it must not trip the support
        # validation that guards non-empty inputs.
        qualities, payments = solver.bid_batch([])
        assert payments.size == 0
