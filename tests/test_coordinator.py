"""The event-driven coordination service: coordinator, links, fallback.

The contracts under test (ISSUE 8 acceptance):

* the ``service`` executor produces **byte-identical** manifests versus
  the serial executor — through the embedded coordinator with warm
  local workers, through an external coordinator with push-attached
  workers, and through every degraded mode below;
* a coordinator crash mid-sweep never loses work: the executor falls
  back to the filesystem protocol, attached workers fall back to
  filesystem claims (the jobs are mirrored), and a restarted
  coordinator rebuilds its queue from the mirror and *adopts* workers
  that kept heartbeating their filesystem locks;
* a worker that disconnects (stops heartbeating) has its claim
  re-queued by lease expiry, exactly like the polling protocol;
* mixed fleets — a push-attached service worker plus a plain
  filesystem worker on the same store — drain a sweep without double
  execution;
* workers shut down gracefully: SIGTERM/SIGINT (or the ``stop_event``
  test hook) releases the in-flight claim, checkpointing first when the
  job asked for ``checkpoint_every``; idle filesystem scans back off
  exponentially with per-worker jitter.
"""

from __future__ import annotations

import json
import os
import random
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.api import (
    EXECUTORS,
    ExperimentStore,
    FMoreEngine,
    JobQueue,
    Scenario,
    ServiceExecutor,
    WorkerClient,
    idle_backoff,
    run_worker,
    scenario_hash,
    start_coordinator,
)
from repro.api.coordinator import _request
from repro.api.distributed import _BACKOFF_START_FRACTION

POLICIES = {
    "churn": {"departure_prob": 0.25, "arrival_prob": 0.6},
    "audit_blacklist": {
        "defect_fraction": 0.3,
        "shortfall": 0.5,
        "strikes_to_ban": 1,
    },
}

#: Nothing listens here: port 9 (discard) refuses on any sane test host.
DEAD_URL = "http://127.0.0.1:9"


def _paper_scenario(**overrides) -> Scenario:
    """The paper preset's component mix at test scale, with policies."""
    defaults = dict(
        n_clients=8,
        k_winners=3,
        n_rounds=3,
        test_per_class=6,
        size_range=(60, 240),
        grid_size=17,
        model_width=0.12,
        image_size=14,
        batch_size=16,
        policies=POLICIES,
    )
    return Scenario.from_preset(
        "paper",
        "mnist_o",
        schemes=("FMore", "RandFL"),
        seeds=overrides.pop("seeds", (0,)),
        **{**defaults, **overrides},
    )


def _cells(scenario: Scenario) -> list[tuple[str, int]]:
    return [(s, d) for d in scenario.seeds for s in scenario.schemes]


def _service(scenario: Scenario, **execution) -> Scenario:
    spec = {
        "executor": "service",
        "max_workers": 0,
        "lease_seconds": 30.0,
        "poll_interval": 0.05,
    }
    spec.update(execution)
    return scenario.with_(execution=spec)


def _assert_manifests_bitwise(reference_root: Path, other_root: Path) -> None:
    """Every manifest under ``reference_root`` must match byte-for-byte."""
    ref_runs = Path(reference_root) / "runs"
    manifests = sorted(ref_runs.rglob("*.json"))
    assert manifests, f"no reference manifests under {ref_runs}"
    for ref in manifests:
        other = Path(other_root) / "runs" / ref.relative_to(ref_runs)
        assert other.exists(), f"missing manifest {other}"
        assert ref.read_bytes() == other.read_bytes(), f"manifest drift: {other}"


def _sweep_payload(scenario: Scenario, cells, **extra) -> dict:
    payload = {"scenario": scenario.to_dict(), "cells": [[s, d] for s, d in cells]}
    payload.update(extra)
    return payload


@pytest.fixture(scope="module")
def paper_reference(tmp_path_factory):
    scenario = _paper_scenario()
    root = tmp_path_factory.mktemp("coord-serial")
    result = FMoreEngine().run(scenario, store=root)
    return scenario, result, root


@pytest.fixture()
def coordinator(tmp_path):
    """A coordinator on an ephemeral port over a fresh store, auto-stopped."""
    handle = start_coordinator(tmp_path, poll_interval=0.05)
    yield handle, ExperimentStore(tmp_path)
    handle.stop()


# ----------------------------------------------------------------------
# Scenario spec surface
# ----------------------------------------------------------------------
class TestServiceExecutionSpec:
    def test_registered(self):
        assert "service" in EXECUTORS
        executor = EXECUTORS.create({"name": "service", "max_workers": 2})
        assert isinstance(executor, ServiceExecutor)
        assert executor.needs_store
        assert not executor.in_process

    def test_spec_canonicalised_with_defaults_and_round_trips(self):
        scenario = Scenario(execution={"executor": "service"})
        assert scenario.execution == {
            "executor": "service",
            "max_workers": None,
            "lease_seconds": 300.0,
            "poll_interval": 1.0,
            "coordinator_url": None,
        }
        again = Scenario.from_json(scenario.to_json())
        assert again.execution == scenario.execution

    def test_coordinator_url_only_for_service(self):
        with pytest.raises(ValueError, match="coordinator_url"):
            Scenario(
                execution={
                    "executor": "distributed",
                    "coordinator_url": "http://x:1",
                }
            )
        with pytest.raises(ValueError, match="coordinator_url"):
            Scenario(
                execution={"executor": "serial", "coordinator_url": "http://x:1"}
            )

    def test_coordinator_url_must_be_http(self):
        with pytest.raises(ValueError, match="http"):
            Scenario(
                execution={"executor": "service", "coordinator_url": "ftp://x"}
            )
        spec = Scenario(
            execution={"executor": "service", "coordinator_url": "http://h:7464"}
        )
        assert spec.execution["coordinator_url"] == "http://h:7464"

    def test_zero_workers_means_coordinate_only(self):
        scenario = Scenario(execution={"executor": "service", "max_workers": 0})
        assert scenario.execution["max_workers"] == 0

    def test_execution_spec_still_outside_the_content_address(self):
        scenario = _paper_scenario()
        assert scenario_hash(scenario) == scenario_hash(
            _service(scenario, coordinator_url="http://127.0.0.1:7464")
        )

    def test_map_is_not_the_interface(self):
        with pytest.raises(RuntimeError, match="execute_plan"):
            ServiceExecutor(max_workers=0).map(abs, [1])

    def test_cli_coordinator_flag_implies_service(self, capsys):
        from repro.__main__ import main

        assert (
            main(
                [
                    "scenario",
                    "--preset",
                    "smoke",
                    "--coordinator",
                    "http://127.0.0.1:7464",
                ]
            )
            == 0
        )
        out = json.loads(capsys.readouterr().out)
        assert out["execution"]["executor"] == "service"
        assert out["execution"]["coordinator_url"] == "http://127.0.0.1:7464"
        # --executor pointing elsewhere contradicts --coordinator.
        with pytest.raises(SystemExit, match="coordinator"):
            main(
                [
                    "scenario",
                    "--preset",
                    "smoke",
                    "--executor",
                    "serial",
                    "--coordinator",
                    "http://127.0.0.1:7464",
                ]
            )


# ----------------------------------------------------------------------
# Idle backoff (satellite: jittered exponential polling)
# ----------------------------------------------------------------------
class TestIdleBackoff:
    def test_doubles_per_pass_and_caps_at_poll_interval(self):
        class NoJitter(random.Random):
            def random(self):  # jitter factor 1.0: the nominal delay
                return 1.0 - 1e-12

        rng = NoJitter()
        poll = 2.0
        delays = [idle_backoff(p, poll, rng) for p in range(1, 12)]
        start = poll * _BACKOFF_START_FRACTION
        for i, delay in enumerate(delays):
            assert delay == pytest.approx(min(poll, start * 2**i), rel=1e-6)
        assert delays[-1] == pytest.approx(poll, rel=1e-6)  # capped

    def test_jitter_stays_in_half_to_full_band(self):
        rng = random.Random("idle:test-worker")
        for passes in range(1, 20):
            nominal = min(1.0, _BACKOFF_START_FRACTION * 2 ** (passes - 1))
            for _ in range(25):
                delay = idle_backoff(passes, 1.0, rng)
                assert 0.5 * nominal <= delay < nominal

    def test_jitter_is_per_worker_deterministic(self):
        a = [idle_backoff(p, 1.0, random.Random("idle:w1")) for p in (1, 2, 3)]
        b = [idle_backoff(p, 1.0, random.Random("idle:w1")) for p in (1, 2, 3)]
        c = [idle_backoff(p, 1.0, random.Random("idle:w2")) for p in (1, 2, 3)]
        assert a == b
        assert a != c

    def test_validation(self):
        rng = random.Random(0)
        with pytest.raises(ValueError, match="idle_passes"):
            idle_backoff(0, 1.0, rng)
        with pytest.raises(ValueError, match="poll_interval"):
            idle_backoff(1, 0.0, rng)


# ----------------------------------------------------------------------
# The coordinator protocol (no cells actually run)
# ----------------------------------------------------------------------
class TestCoordinatorProtocol:
    def test_register_advertises_resolved_store(self, coordinator):
        handle, store = coordinator
        client = WorkerClient(handle.url, "w0")
        reply = client.register()
        assert reply["ok"] is True
        # Absolute: workers on other cwds must agree on the location.
        assert Path(reply["store"]).is_absolute()
        assert Path(reply["store"]) == store.root.resolve()
        health = client.health()
        assert health["ok"] is True and health["workers"] == 1

    def test_sweep_mirrors_jobs_and_is_idempotent(self, coordinator):
        handle, store = coordinator
        scenario = _paper_scenario()
        cells = _cells(scenario)
        reply = _request(
            handle.url, "POST", "/sweep", _sweep_payload(scenario, cells)
        )
        assert reply["queued"] == 2 and reply["outstanding"] == 2
        assert reply["hash"] == scenario_hash(scenario)
        # The store mirror is the durable queue: one spec per cell.
        assert len(JobQueue(store).pending()) == 2
        # Re-submitting a live sweep queues nothing new.
        again = _request(
            handle.url, "POST", "/sweep", _sweep_payload(scenario, cells)
        )
        assert again["queued"] == 0 and again["outstanding"] == 2

    def test_claim_locks_under_the_workers_own_label(self, coordinator):
        handle, store = coordinator
        scenario = _paper_scenario()
        _request(
            handle.url,
            "POST",
            "/sweep",
            _sweep_payload(scenario, _cells(scenario)[:1]),
        )
        client = WorkerClient(handle.url, "the-worker")
        job = client.claim(long_poll=5.0)
        assert job is not None
        h, scheme, seed = job["scenario_hash"], job["scheme"], job["seed"]
        queue = JobQueue(store)
        lock = JobQueue.lock_path_for(queue.job_path(h, scheme, seed))
        # The mirror lock carries the *worker's* label, so the worker can
        # heartbeat it directly if this coordinator dies.
        assert json.loads(lock.read_text())["worker"] == "the-worker"
        assert client.heartbeat(h, scheme, seed, rounds_done=1) is True
        client.release(h, scheme, seed)
        assert not lock.exists()
        reclaimed = client.claim(long_poll=5.0)
        assert reclaimed is not None
        assert (reclaimed["scheme"], reclaimed["seed"]) == (scheme, seed)

    def test_complete_without_manifest_requeues(self, coordinator):
        handle, store = coordinator
        scenario = _paper_scenario()
        _request(
            handle.url,
            "POST",
            "/sweep",
            _sweep_payload(scenario, _cells(scenario)[:1]),
        )
        client = WorkerClient(handle.url, "liar")
        job = client.claim(long_poll=5.0)
        assert job is not None
        reply = client.complete(job["scenario_hash"], job["scheme"], job["seed"])
        assert reply["ok"] is False  # no manifest: a phantom completion
        again = client.claim(long_poll=5.0)
        assert again is not None and again["scheme"] == job["scheme"]

    def test_disconnected_worker_requeued_by_lease_expiry(self, coordinator):
        handle, store = coordinator
        scenario = _paper_scenario()
        _request(
            handle.url,
            "POST",
            "/sweep",
            _sweep_payload(
                scenario, _cells(scenario)[:1], lease_seconds=0.2
            ),
        )
        ghost = WorkerClient(handle.url, "ghost")
        job = ghost.claim(long_poll=5.0)
        assert job is not None
        # The ghost never heartbeats: the janitor must expire the claim
        # and re-queue the cell for someone else.
        rescuer = WorkerClient(handle.url, "rescuer")
        stolen = rescuer.claim(long_poll=10.0)
        assert stolen is not None
        assert (stolen["scheme"], stolen["seed"]) == (job["scheme"], job["seed"])
        # ...and the ghost's next heartbeat learns it lost the cell.
        assert (
            ghost.heartbeat(
                job["scenario_hash"], job["scheme"], job["seed"], rounds_done=2
            )
            is False
        )

    def test_restarted_coordinator_rebuilds_queue_from_mirror(self, tmp_path):
        scenario = _paper_scenario()
        first = start_coordinator(tmp_path, poll_interval=0.05)
        try:
            _request(
                first.url,
                "POST",
                "/sweep",
                _sweep_payload(scenario, _cells(scenario)),
            )
        finally:
            first.stop()
        # The in-memory queue died with the coordinator; the mirror did not.
        second = start_coordinator(tmp_path, poll_interval=0.05)
        try:
            health = WorkerClient(second.url, "w").health()
            assert health["pending"] == 2 and health["outstanding"] == 2
            job = WorkerClient(second.url, "w").claim(long_poll=5.0)
            assert job is not None
        finally:
            second.stop()

    def test_restarted_coordinator_adopts_heartbeating_worker(self, tmp_path):
        scenario = _paper_scenario()
        first = start_coordinator(tmp_path, poll_interval=0.05)
        try:
            _request(
                first.url,
                "POST",
                "/sweep",
                _sweep_payload(scenario, _cells(scenario)[:1]),
            )
            survivor = WorkerClient(first.url, "survivor")
            job = survivor.claim(long_poll=5.0)
            assert job is not None
        finally:
            first.stop()
        # The worker still owns the filesystem lock (under its label); a
        # restarted coordinator defers the cell, then adopts the worker on
        # its first heartbeat instead of double-dispatching.
        second = start_coordinator(tmp_path, poll_interval=0.05)
        try:
            health = WorkerClient(second.url, "x").health()
            assert health["deferred"] == 1 and health["pending"] == 0
            adopted = WorkerClient(second.url, "survivor")
            assert (
                adopted.heartbeat(
                    job["scenario_hash"], job["scheme"], job["seed"], rounds_done=1
                )
                is True
            )
            health = WorkerClient(second.url, "x").health()
            assert health["claimed"] == 1 and health["deferred"] == 0
        finally:
            second.stop()


# ----------------------------------------------------------------------
# End-to-end sweeps — always byte-identical to serial
# ----------------------------------------------------------------------
class TestServiceEngine:
    def test_embedded_coordinator_with_warm_workers_bitwise(
        self, tmp_path, paper_reference
    ):
        """The full default path: embedded coordinator + spawned workers."""
        scenario, reference, ref_root = paper_reference
        plan = _service(scenario, max_workers=2)
        result = FMoreEngine().run(plan, store=tmp_path)
        for scheme in scenario.schemes:
            assert (
                result.histories[scheme][0].records
                == reference.histories[scheme][0].records
            )
        _assert_manifests_bitwise(ref_root, tmp_path)
        # The sweep retired every mirror file on completion.
        assert JobQueue(tmp_path).pending() == []
        assert not list((Path(tmp_path) / "jobs").rglob("*.lock"))

    def test_external_coordinator_with_attached_worker_bitwise(
        self, coordinator, paper_reference
    ):
        """Coordinate-only submission to a running service, one push worker."""
        scenario, reference, ref_root = paper_reference
        handle, store = coordinator
        plan = _service(scenario, coordinator_url=handle.url)
        worker = threading.Thread(
            target=run_worker,
            kwargs=dict(
                store=store.root,
                coordinator=handle.url,
                poll_interval=0.05,
                max_cells=2,
                worker_id="pushed",
            ),
            daemon=True,
        )
        worker.start()
        result = FMoreEngine().run(plan, store=store.root)
        worker.join(timeout=120)
        assert not worker.is_alive()
        for scheme in scenario.schemes:
            assert (
                result.histories[scheme][0].records
                == reference.histories[scheme][0].records
            )
        _assert_manifests_bitwise(ref_root, store.root)
        health = WorkerClient(handle.url, "probe").health()
        assert health["outstanding"] == 0 and health["pending"] == 0
        # Round-completion events streamed: one per round per cell.
        assert health["rounds_seen"] >= scenario.n_rounds * 2

    def test_coordinator_crash_falls_back_to_filesystem_bitwise(
        self, tmp_path, paper_reference
    ):
        """An unreachable coordinator degrades to the polling protocol."""
        scenario, reference, ref_root = paper_reference
        plan = _service(scenario, coordinator_url=DEAD_URL)
        drain = threading.Thread(
            target=run_worker,
            kwargs=dict(
                store=tmp_path,
                poll_interval=0.05,
                max_cells=2,
                worker_id="fs-rescue",
            ),
            daemon=True,
        )
        drain.start()
        result = FMoreEngine().run(plan, store=tmp_path)
        drain.join(timeout=120)
        assert not drain.is_alive()
        for scheme in scenario.schemes:
            assert (
                result.histories[scheme][0].records
                == reference.histories[scheme][0].records
            )
        _assert_manifests_bitwise(ref_root, tmp_path)

    def test_mixed_fleet_drains_without_double_execution(
        self, coordinator, paper_reference
    ):
        """One push-attached worker + one plain filesystem worker."""
        scenario, _, ref_root = paper_reference
        handle, store = coordinator
        _request(
            handle.url,
            "POST",
            "/sweep",
            _sweep_payload(scenario, _cells(scenario), lease_seconds=30.0),
        )
        completions: dict[str, int] = {}

        def _drain(name: str, **kwargs) -> None:
            completions[name] = run_worker(
                store.root, poll_interval=0.05, worker_id=name, **kwargs
            )

        service_worker = threading.Thread(
            target=_drain,
            args=("svc",),
            kwargs=dict(coordinator=handle.url, exit_when_idle=True),
            daemon=True,
        )
        fs_worker = threading.Thread(
            target=_drain,
            args=("fs",),
            kwargs=dict(exit_when_idle=True),
            daemon=True,
        )
        service_worker.start()
        fs_worker.start()
        # exit_when_idle: each worker leaves once every cell is either
        # manifested or claimed by the other, so joining both means the
        # sweep drained.
        service_worker.join(timeout=120)
        fs_worker.join(timeout=120)
        assert not service_worker.is_alive() and not fs_worker.is_alive()
        # Exactly two executions across the whole fleet: no double runs.
        assert completions["svc"] + completions["fs"] == 2
        _assert_manifests_bitwise(ref_root, store.root)
        assert JobQueue(store.root).pending() == []
        health = WorkerClient(handle.url, "probe").health()
        assert health["outstanding"] == 0


# ----------------------------------------------------------------------
# Graceful shutdown (satellite: SIGTERM releases or checkpoints)
# ----------------------------------------------------------------------
class TestGracefulShutdown:
    def test_preset_stop_event_exits_before_claiming(self, tmp_path, paper_reference):
        scenario, _, _ = paper_reference
        queue = JobQueue(tmp_path)
        queue.enqueue(scenario, _cells(scenario))
        stop = threading.Event()
        stop.set()
        assert run_worker(tmp_path, stop_event=stop, worker_id="halted") == 0
        assert len(queue.pending()) == 2  # nothing claimed, nothing lost

    def test_midcell_stop_checkpoints_then_releases(self, tmp_path, paper_reference):
        """SIGTERM mid-cell on a checkpointing job: progress persists."""
        scenario, _, ref_root = paper_reference
        store = ExperimentStore(tmp_path)
        queue = JobQueue(store)
        cell = _cells(scenario)[:1]
        queue.enqueue(scenario, cell, resume=True, checkpoint_every=1)
        h = scenario_hash(scenario)
        scheme, seed = cell[0]
        completed = run_worker(
            store,
            exit_when_idle=True,
            worker_id="leaver",
            stop_after_rounds=1,  # chaos hook: SIGTERM after round 1
        )
        assert completed == 0
        # The claim was released (no lock) and round 1 was checkpointed.
        assert not list((store.root / "jobs").rglob("*.lock"))
        checkpoint = store.load_checkpoint(h, scheme, seed)
        assert checkpoint is not None and checkpoint.round_index == 1
        # A successor resumes from the checkpoint and lands the
        # byte-identical manifest (the resume contract).
        assert run_worker(store, exit_when_idle=True, worker_id="successor") == 1
        ref = ref_root / "runs" / h / f"{scheme}-seed{seed}.json"
        mine = store.root / "runs" / h / f"{scheme}-seed{seed}.json"
        assert mine.read_bytes() == ref.read_bytes()
        assert store.load_checkpoint(h, scheme, seed) is None

    def test_midcell_stop_without_checkpointing_just_releases(
        self, tmp_path, paper_reference
    ):
        scenario, _, ref_root = paper_reference
        store = ExperimentStore(tmp_path)
        queue = JobQueue(store)
        cell = _cells(scenario)[:1]
        queue.enqueue(scenario, cell)  # no checkpoint_every
        h = scenario_hash(scenario)
        scheme, seed = cell[0]
        assert (
            run_worker(
                store, exit_when_idle=True, worker_id="leaver", stop_after_rounds=2
            )
            == 0
        )
        assert not list((store.root / "jobs").rglob("*.lock"))
        assert store.load_checkpoint(h, scheme, seed) is None
        assert len(queue.pending()) == 1  # the cell is immediately claimable
        # The successor restarts from round zero — slower, never different.
        assert run_worker(store, exit_when_idle=True, worker_id="successor") == 1
        ref = ref_root / "runs" / h / f"{scheme}-seed{seed}.json"
        mine = store.root / "runs" / h / f"{scheme}-seed{seed}.json"
        assert mine.read_bytes() == ref.read_bytes()

    def test_midcell_stop_releases_through_the_coordinator(
        self, coordinator, paper_reference
    ):
        """The service path: a stopping push worker hands its claim back."""
        scenario, _, ref_root = paper_reference
        handle, store = coordinator
        cell = _cells(scenario)[:1]
        _request(
            handle.url,
            "POST",
            "/sweep",
            _sweep_payload(
                scenario, cell, resume=True, checkpoint_every=1
            ),
        )
        completed = run_worker(
            store.root,
            coordinator=handle.url,
            poll_interval=0.05,
            exit_when_idle=True,
            worker_id="svc-leaver",
            stop_after_rounds=1,
        )
        assert completed == 0
        health = WorkerClient(handle.url, "probe").health()
        assert health["claimed"] == 0  # released, not leaked until lease
        assert health["pending"] == 1
        h = scenario_hash(scenario)
        scheme, seed = cell[0]
        assert store.load_checkpoint(h, scheme, seed) is not None
        # A fresh push worker resumes and completes byte-identically.
        assert (
            run_worker(
                store.root,
                coordinator=handle.url,
                poll_interval=0.05,
                exit_when_idle=True,
                worker_id="svc-successor",
            )
            == 1
        )
        ref = ref_root / "runs" / h / f"{scheme}-seed{seed}.json"
        mine = store.root / "runs" / h / f"{scheme}-seed{seed}.json"
        assert mine.read_bytes() == ref.read_bytes()


# ----------------------------------------------------------------------
# CLI: the coordinator command
# ----------------------------------------------------------------------
class TestCoordinatorCLI:
    def test_coordinator_needs_a_store(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit, match="--store"):
            main(["coordinator"])

    def test_cli_coordinator_serves_and_exits_cleanly_on_sigterm(self, tmp_path):
        """``python -m repro coordinator``: announce, serve, clean SIGTERM."""
        src_dir = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            src_dir
            if not env.get("PYTHONPATH")
            else os.pathsep.join([src_dir, env["PYTHONPATH"]])
        )
        proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "coordinator",
                "--store",
                str(tmp_path),
                "--port",
                "0",
            ],
            env=env,
            stdout=subprocess.PIPE,
            text=True,
        )
        try:
            announce = proc.stdout.readline()
            assert "coordinator: http://" in announce
            url = announce.split()[1]
            health = WorkerClient(url, "probe").health()
            assert health["ok"] is True
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=30)
            assert code == 0
            assert "stopped" in proc.stdout.read()
        finally:
            if proc.poll() is None:  # pragma: no cover - cleanup on failure
                proc.kill()
                proc.wait(timeout=10)
