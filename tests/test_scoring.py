"""Unit tests for scoring rules (paper Eq. 4 and the Section III-A families)."""

import numpy as np
import pytest

from repro.core.scoring import (
    AdditiveScore,
    CobbDouglasScore,
    MultiplicativeScore,
    PerfectComplementaryScore,
    QuasiLinearScoringRule,
    normalize_weights,
)


class TestNormalizeWeights:
    def test_sums_to_one(self):
        w = normalize_weights([1.0, 3.0])
        assert w.sum() == pytest.approx(1.0)
        assert w[1] == pytest.approx(0.75)

    def test_rejects_zero_sum(self):
        with pytest.raises(ValueError):
            normalize_weights([0.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            normalize_weights([])


class TestAdditiveScore:
    def test_value_is_weighted_sum(self):
        rule = AdditiveScore([0.4, 0.3, 0.3])
        assert rule.value(np.array([1.0, 2.0, 3.0])) == pytest.approx(1.9)

    def test_gradient_is_weights(self):
        rule = AdditiveScore([0.4, 0.6])
        np.testing.assert_allclose(rule.gradient(np.array([5.0, 2.0])), [0.4, 0.6])

    def test_batch_matches_scalar(self):
        rule = AdditiveScore([0.5, 0.5])
        q = np.array([[1.0, 2.0], [3.0, 4.0]])
        np.testing.assert_allclose(
            rule.value_batch(q), [rule.value(q[0]), rule.value(q[1])]
        )

    def test_rejects_wrong_dimensionality(self):
        rule = AdditiveScore([1.0, 1.0])
        with pytest.raises(ValueError):
            rule.value(np.array([1.0, 2.0, 3.0]))

    def test_rejects_negative_weights(self):
        with pytest.raises(ValueError):
            AdditiveScore([0.5, -0.5])


class TestPerfectComplementaryScore:
    def test_value_is_min(self):
        rule = PerfectComplementaryScore([0.5, 0.5])
        # The walk-through example: min(0.5*q1, 0.5*q2).
        assert rule.value(np.array([4.0, 2.0])) == pytest.approx(1.0)

    def test_gradient_selects_binding_dimension(self):
        rule = PerfectComplementaryScore([1.0, 1.0])
        grad = rule.gradient(np.array([3.0, 1.0]))
        np.testing.assert_allclose(grad, [0.0, 1.0])

    def test_batch(self):
        rule = PerfectComplementaryScore([1.0, 2.0])
        q = np.array([[1.0, 1.0], [4.0, 1.0]])
        np.testing.assert_allclose(rule.value_batch(q), [1.0, 2.0])


class TestCobbDouglasScore:
    def test_value(self):
        rule = CobbDouglasScore([0.5, 0.5])
        assert rule.value(np.array([4.0, 9.0])) == pytest.approx(6.0)

    def test_zero_weight_dimension_is_neutral(self):
        rule = CobbDouglasScore([1.0, 0.0])
        assert rule.value(np.array([3.0, 0.0])) == pytest.approx(3.0)

    def test_gradient_matches_finite_difference(self):
        rule = CobbDouglasScore([0.3, 0.7], scale=2.0)
        q = np.array([2.0, 5.0])
        grad = rule.gradient(q)
        eps = 1e-6
        for j in range(2):
            qp, qm = q.copy(), q.copy()
            qp[j] += eps
            qm[j] -= eps
            num = (rule.value(qp) - rule.value(qm)) / (2 * eps)
            assert grad[j] == pytest.approx(num, rel=1e-4)

    def test_rejects_negative_quality(self):
        rule = CobbDouglasScore([0.5, 0.5])
        with pytest.raises(ValueError):
            rule.value(np.array([-1.0, 1.0]))


class TestMultiplicativeScore:
    def test_paper_simulation_rule(self):
        # Section V-A: s(q1, q2) = 25 * q1 * q2.
        rule = MultiplicativeScore(n_dimensions=2, scale=25.0)
        assert rule.value(np.array([4.0, 0.5])) == pytest.approx(50.0)

    def test_gradient(self):
        rule = MultiplicativeScore(n_dimensions=2, scale=25.0)
        np.testing.assert_allclose(
            rule.gradient(np.array([4.0, 0.5])), [12.5, 100.0]
        )

    def test_gradient_exact_at_zero(self):
        rule = MultiplicativeScore(n_dimensions=2, scale=1.0)
        np.testing.assert_allclose(rule.gradient(np.array([0.0, 3.0])), [3.0, 0.0])


class TestQuasiLinearScoringRule:
    def test_score_subtracts_payment(self):
        rule = QuasiLinearScoringRule(AdditiveScore([1.0, 1.0]))
        assert rule.score(np.array([1.0, 2.0]), payment=0.5) == pytest.approx(2.5)

    def test_min_max_normalisation(self):
        # Walk-through example of Section III-B normalises before scoring.
        rule = QuasiLinearScoringRule(
            AdditiveScore([0.5, 0.5]), lower=[1000, 5], upper=[5000, 100]
        )
        q = np.array([3000.0, 52.5])
        normalized = rule.normalize(q)
        np.testing.assert_allclose(normalized, [0.5, 0.5])
        assert rule.score(q, 0.1) == pytest.approx(0.4)

    def test_score_batch_matches_scalar(self):
        rule = QuasiLinearScoringRule(
            AdditiveScore([0.5, 0.5]), lower=[0, 0], upper=[10, 1]
        )
        qs = np.array([[5.0, 0.5], [10.0, 1.0]])
        ps = np.array([0.1, 0.2])
        batch = rule.score_batch(qs, ps)
        np.testing.assert_allclose(
            batch, [rule.score(qs[0], ps[0]), rule.score(qs[1], ps[1])]
        )

    def test_requires_both_bounds(self):
        with pytest.raises(ValueError):
            QuasiLinearScoringRule(AdditiveScore([1.0]), lower=[0.0])

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ValueError):
            QuasiLinearScoringRule(AdditiveScore([1.0]), lower=[5.0], upper=[1.0])
