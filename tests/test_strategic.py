"""Strategic-bidder subsystem: ``BID_POLICIES``, bidding mixes, the gym.

The contracts under test:

* **Hash/manifest compatibility** — a scenario without a ``bidding`` spec
  serialises, hashes and stores exactly as before the field existed, and
  an all-truthful run never touches the strategic path (no ``bid_payoff``
  actions, no payoff columns).
* **Determinism** — mixed-population runs are reproducible, identical
  under the serial and process executors, and checkpoint/resume
  bitwise-identically including per-node policy state (regret matching
  mid-learning).
* **Store retention** — ``keep_last_n``/``keep_every_k`` keep a pruned
  trajectory of round checkpoints; the default layout stays flat.
* **The gym** — ``AuctionEnv`` steps one controlled bidder through a
  session, rewards realized payoff, and snapshots/restores.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import ExperimentStore, FMoreEngine, Scenario, StoreError, scenario_hash
from repro.api.distributed import JobQueue
from repro.strategic import (
    AuctionEnv,
    BID_POLICIES,
    BidBatch,
    ExternalBidPolicy,
    FixedMarkupBidding,
    RegretMatchingBidding,
    RoundFeedback,
    TruthfulBidding,
    build_bid_policies,
)
from repro.analysis import run_incentive_sweep

MIX = [
    {"name": "fixed_markup", "markup": 0.25, "fraction": 0.3, "label": "greedy"},
    {"name": "regret_matching", "fraction": 0.2},
]


def _scenario(**overrides):
    defaults = dict(
        schemes=("FMore",),
        seeds=(0,),
        n_clients=10,
        k_winners=3,
        n_rounds=3,
        test_per_class=8,
        size_range=(60, 240),
        grid_size=17,
        model_width=0.12,
        batch_size=16,
    )
    return Scenario.from_preset(
        "smoke", "mnist_o", **{**defaults, **overrides}
    )


@pytest.fixture(scope="module")
def base_reference():
    scenario = _scenario()
    return scenario, FMoreEngine().run(scenario)


@pytest.fixture(scope="module")
def mixed_reference():
    scenario = _scenario(bidding={"mix": MIX})
    return scenario, FMoreEngine().run(scenario)


class TestRegistryAndSpecValidation:
    def test_family_is_registered(self):
        for name in (
            "truthful",
            "fixed_markup",
            "random_jitter",
            "regret_matching",
            "adaptive_heuristic",
            "external",
        ):
            assert name in BID_POLICIES.names()

    def test_bad_spec_keys_rejected(self):
        with pytest.raises(ValueError, match="bidding"):
            _scenario(bidding={"mixx": []})

    @pytest.mark.parametrize("fraction", [0.0, -0.1, 1.5])
    def test_fraction_must_be_in_unit_interval(self, fraction):
        with pytest.raises(ValueError):
            _scenario(
                bidding={"mix": [{"name": "fixed_markup", "fraction": fraction}]}
            )

    def test_fractions_must_not_oversubscribe(self):
        with pytest.raises(ValueError, match="sum"):
            _scenario(
                bidding={
                    "mix": [
                        {"name": "fixed_markup", "fraction": 0.7},
                        {"name": "random_jitter", "fraction": 0.6},
                    ]
                }
            )

    def test_duplicate_labels_rejected(self):
        with pytest.raises(ValueError):
            _scenario(
                bidding={
                    "mix": [
                        {"name": "fixed_markup", "fraction": 0.2, "label": "x"},
                        {"name": "random_jitter", "fraction": 0.2, "label": "x"},
                    ]
                }
            )

    def test_truthful_label_reserved(self):
        with pytest.raises(ValueError, match="truthful"):
            _scenario(
                bidding={
                    "mix": [
                        {
                            "name": "fixed_markup",
                            "fraction": 0.2,
                            "label": "truthful",
                        }
                    ]
                }
            )

    def test_unknown_policy_and_params_fail_at_validation(self):
        with pytest.raises(ValueError, match="unknown bid policy"):
            _scenario(bidding={"mix": [{"name": "nope", "fraction": 0.2}]})
        with pytest.raises((TypeError, ValueError)):
            _scenario(
                bidding={
                    "mix": [{"name": "fixed_markup", "fraction": 0.2, "bogus": 1}]
                }
            )

    def test_per_scheme_override_and_revert(self):
        s = _scenario(
            schemes=("FMore", "RandFL"),
            bidding={
                "mix": MIX,
                "per_scheme": {
                    "RandFL": None,
                    "FMore": {"mix": [{"name": "random_jitter", "fraction": 0.5}]},
                },
            },
        )
        assert s.bidding_for("RandFL") == []
        assert [e["name"] for e in s.bidding_for("FMore")] == ["random_jitter"]
        with pytest.raises(ValueError):
            _scenario(bidding={"mix": MIX, "per_scheme": {"NoSuchScheme": None}})

    def test_bidding_round_trips_through_json(self):
        s = _scenario(bidding={"mix": MIX})
        clone = Scenario.from_dict(json.loads(json.dumps(s.to_dict())))
        assert clone.bidding == s.bidding
        assert clone == s


class TestHashAndManifestCompat:
    def test_empty_bidding_is_omitted_from_the_dict(self):
        s = _scenario()
        assert "bidding" not in s.to_dict()
        assert scenario_hash(s) == scenario_hash(s.with_(bidding={}))

    def test_mix_changes_the_content_address(self):
        s = _scenario()
        assert scenario_hash(s) != scenario_hash(s.with_(bidding={"mix": MIX}))

    def test_all_truthful_run_never_enters_the_strategic_path(
        self, base_reference
    ):
        _, result = base_reference
        kinds = [
            a.kind
            for h in result.histories["FMore"]
            for r in h.records
            for a in r.policy_actions
        ]
        assert "bid_payoff" not in kinds
        assert not any(
            c.startswith("payoff_") for c in result.metrics().columns
        )

    def test_default_scenario_manifests_are_byte_stable(
        self, tmp_path, base_reference
    ):
        """The pre-PR store contract: no ``bidding`` key anywhere on disk."""
        scenario, result = base_reference
        store = ExperimentStore(tmp_path)
        result.save(store)
        manifest = next((tmp_path / "runs").rglob("FMore-seed0.json"))
        assert "bidding" not in manifest.read_text()
        spec = next((tmp_path / "scenarios").glob("*.json"))
        assert "bidding" not in spec.read_text()

    def test_labelled_truthful_control_bids_like_the_hot_path(
        self, base_reference
    ):
        scenario, reference = base_reference
        control = scenario.with_(
            bidding={
                "mix": [{"name": "truthful", "fraction": 0.3, "label": "ctl"}]
            }
        )
        history = FMoreEngine().run(control).history("FMore")
        ref = reference.history("FMore")
        assert history.accuracies == ref.accuracies
        for got, want in zip(history.records, ref.records):
            assert got.winner_ids == want.winner_ids
            assert got.total_payment == want.total_payment


class TestMixedPopulationRuns:
    def test_bid_payoff_reported_once_per_round_with_all_groups(
        self, mixed_reference
    ):
        _, result = mixed_reference
        for history in result.histories["FMore"]:
            for record in history.records:
                payoffs = [
                    a for a in record.policy_actions if a.kind == "bid_payoff"
                ]
                assert len(payoffs) == 1
                groups = payoffs[0].payload["groups"]
                assert set(groups) == {"greedy", "regret_matching", "truthful"}
                assert groups["greedy"]["n"] == 3
                assert groups["regret_matching"]["n"] == 2
                assert groups["truthful"]["n"] == 5

    def test_payoff_columns_in_metrics(self, mixed_reference):
        _, result = mixed_reference
        frame = result.metrics()
        for label in ("greedy", "regret_matching", "truthful"):
            mean = frame.column(f"payoff_{label}_mean")
            assert all(v is None or isinstance(v, float) for v in mean)
            assert frame.column(f"payoff_{label}_min")

    def test_rerun_is_deterministic(self, mixed_reference):
        scenario, result = mixed_reference
        again = FMoreEngine().run(scenario)
        assert again.histories == result.histories

    def test_process_executor_matches_serial(self, mixed_reference):
        scenario, result = mixed_reference
        plan = scenario.with_(
            seeds=(0,), execution={"executor": "process", "max_workers": 2}
        )
        assert FMoreEngine().run(plan).histories == result.histories

    def test_markup_shading_actually_changes_the_outcome(
        self, base_reference, mixed_reference
    ):
        _, base = base_reference
        _, mixed = mixed_reference
        assert mixed.history("FMore") != base.history("FMore")


class TestCheckpointRoundTrip:
    def test_snapshot_carries_policy_state_and_resumes_bitwise(
        self, tmp_path, mixed_reference
    ):
        scenario, reference = mixed_reference
        session = FMoreEngine().session(scenario, "FMore", 0)
        next(session)
        next(session)  # two rounds: regret matching has live regrets
        checkpoint = session.snapshot()
        entries = {e["label"]: e for e in checkpoint.bid_policy_states}
        assert set(entries) == {"greedy", "regret_matching"}
        assert entries["regret_matching"]["state"]["regrets"]  # learnt something
        assert checkpoint.bidding_rng_state is not None
        store = ExperimentStore(tmp_path)
        store.save_checkpoint(checkpoint)
        loaded = store.load_checkpoint(scenario, "FMore", 0)
        resumed = FMoreEngine().resume(loaded).run()
        assert resumed == reference.history("FMore")

    def test_old_checkpoints_without_policy_fields_still_load(
        self, tmp_path, base_reference
    ):
        scenario, reference = base_reference
        session = FMoreEngine().session(scenario, "FMore", 0)
        next(session)
        store = ExperimentStore(tmp_path)
        path = store.save_checkpoint(session.snapshot())
        state = json.loads((path / "state.json").read_text())
        # A checkpoint written before the strategic subsystem existed.
        state.pop("bid_policy_states", None)
        state.pop("bidding_rng_state", None)
        (path / "state.json").write_text(json.dumps(state))
        loaded = store.load_checkpoint(scenario, "FMore", 0)
        assert loaded.bid_policy_states == []
        assert FMoreEngine().resume(loaded).run() == reference.history("FMore")


class TestPolicyTransforms:
    def _batch(self):
        return BidBatch(
            round_index=0,
            node_ids=[7, 9],
            thetas=np.array([0.3, 0.6]),
            capacities=np.array([[5.0, 1.0], [5.0, 1.0]]),
            qualities=np.array([[1.0, 0.5], [2.0, 0.6]]),
            payments=np.array([1.0, 2.0]),
            costs=np.array([0.5, 1.0]),
            bounds=np.array([[0.0, 10.0], [0.0, 1.0]]),
        )

    def test_fixed_markup_scales_the_ask(self):
        batch = self._batch()
        q, p = FixedMarkupBidding(markup=0.25).shade(batch, None)
        assert np.array_equal(q, batch.qualities)
        assert np.allclose(p, [1.25, 2.5])
        with pytest.raises(ValueError):
            FixedMarkupBidding(markup=-1.0)
        assert FixedMarkupBidding(markup=-0.1).enforce_ir is False

    def test_truthful_is_the_identity(self):
        batch = self._batch()
        q, p = TruthfulBidding().shade(batch, None)
        assert q is batch.qualities and p is batch.payments

    def test_clip_qualities_respects_capacity_and_bounds(self):
        batch = self._batch()
        wild = np.array([[99.0, 99.0], [-1.0, 0.2]])
        clipped = batch.clip_qualities(wild)
        assert np.allclose(clipped, [[5.0, 1.0], [0.0, 0.2]])

    def test_regret_matching_state_round_trips(self):
        policy = RegretMatchingBidding(markups=(0.0, 0.1))
        policy._regrets = {7: [0.5, -0.25]}
        policy._pending = {9: (1, 2.0)}
        clone = RegretMatchingBidding(markups=(0.0, 0.1))
        clone.load_state(json.loads(json.dumps(policy.state_dict())))
        assert clone._regrets == {7: [0.5, -0.25]}
        assert clone._pending == {9: (1, 2.0)}
        with pytest.raises(ValueError, match="unknown"):
            clone.load_state({"bogus": 1})
        with pytest.raises(ValueError):
            RegretMatchingBidding(markups=())
        with pytest.raises(ValueError):
            RegretMatchingBidding(markups=(0.1, 0.1))

    def test_regret_matching_learns_from_counterfactuals(self):
        policy = RegretMatchingBidding(markups=(0.0, 0.5))
        batch = self._batch()
        rng = np.random.default_rng(0)
        policy.shade(batch, rng)
        feedback = RoundFeedback(
            round_index=0,
            node_ids=[7, 9],
            submitted=np.array([True, True]),
            won=np.array([True, False]),
            payments=np.array([1.0, 0.0]),
            costs=np.array([0.5, 1.0]),
            values=np.array([3.0, 2.5]),
            bid_payments=np.array([1.0, 2.0]),
            threshold=1.5,
        )
        policy.observe(feedback, rng)
        assert policy._pending == {}
        assert set(policy._regrets) <= {7, 9}
        assert np.allclose(feedback.payoffs, [0.5, 0.0])

    def test_external_policy_applies_and_clears_pending_actions(self):
        policy = ExternalBidPolicy()
        policy.set_action(7, 9.0)
        batch = self._batch()
        q, p = policy.shade(batch, None)
        assert p[0] == 9.0 and p[1] == 2.0
        assert policy.pending == {}

    def test_stateless_policies_reject_state(self):
        with pytest.raises(ValueError, match="stateless"):
            FixedMarkupBidding().load_state({"x": 1})

    def test_build_bid_policies_assigns_contiguous_blocks(self):
        ids = list(range(10))
        assignments = build_bid_policies(MIX, ids)
        greedy = [i for i, p in assignments.items() if p.label == "greedy"]
        regret = [i for i, p in assignments.items() if p.label == "regret_matching"]
        assert greedy == [0, 1, 2] and regret == [3, 4]
        # Unlabelled truthful entries stay on the hot path entirely...
        assert build_bid_policies(
            [{"name": "truthful", "fraction": 0.5}], ids
        ) == {}
        # ...while labelled ones become an addressable control group.
        control = build_bid_policies(
            [{"name": "truthful", "fraction": 0.5, "label": "ctl"}], ids
        )
        assert sorted(control) == [0, 1, 2, 3, 4]
        assert all(p.label == "ctl" for p in control.values())


class TestStoreRetention:
    def _checkpoints(self, store, scenario, rounds=3):
        session = FMoreEngine().session(scenario, "FMore", 0)
        for _ in range(rounds):
            next(session)
            store.save_checkpoint(session.snapshot())

    def test_default_layout_stays_flat(self, tmp_path, base_reference):
        scenario, _ = base_reference
        store = ExperimentStore(tmp_path)
        self._checkpoints(store, scenario, rounds=2)
        cell = (
            tmp_path / "checkpoints" / scenario_hash(scenario) / "FMore-seed0"
        )
        assert (cell / "state.json").exists()
        assert not any(p.name.startswith("round-") for p in cell.iterdir())
        assert store.load_checkpoint(scenario, "FMore", 0).round_index == 2

    def test_retention_keeps_last_n_and_every_k(self, tmp_path, base_reference):
        scenario, _ = base_reference
        store = ExperimentStore(tmp_path, keep_last_n=1, keep_every_k=2)
        self._checkpoints(store, scenario, rounds=3)
        assert store.checkpoint_rounds(scenario, "FMore", 0) == [2, 3]
        assert (
            store.load_checkpoint(scenario, "FMore", 0, round_index=2).round_index
            == 2
        )
        assert store.load_checkpoint(scenario, "FMore", 0).round_index == 3
        with pytest.raises(StoreError, match="round"):
            store.load_checkpoint(scenario, "FMore", 0, round_index=1)

    def test_keep_last_n_prunes_old_rounds(self, tmp_path, base_reference):
        scenario, _ = base_reference
        store = ExperimentStore(tmp_path, keep_last_n=2)
        self._checkpoints(store, scenario, rounds=3)
        assert store.checkpoint_rounds(scenario, "FMore", 0) == [2, 3]

    def test_retained_round_resumes_bitwise(self, tmp_path, base_reference):
        scenario, reference = base_reference
        store = ExperimentStore(tmp_path, keep_last_n=3)
        self._checkpoints(store, scenario, rounds=2)
        early = store.load_checkpoint(scenario, "FMore", 0, round_index=1)
        assert FMoreEngine().resume(early).run() == reference.history("FMore")

    def test_flat_checkpoint_readable_by_retaining_store(
        self, tmp_path, base_reference
    ):
        scenario, _ = base_reference
        ExperimentStore(tmp_path)  # flat writer
        self._checkpoints(ExperimentStore(tmp_path), scenario, rounds=1)
        retaining = ExperimentStore(tmp_path, keep_last_n=4)
        assert retaining.checkpoint_rounds(scenario, "FMore", 0) == [1]
        assert retaining.load_checkpoint(scenario, "FMore", 0).round_index == 1

    def test_clear_checkpoint_removes_round_dirs(self, tmp_path, base_reference):
        scenario, _ = base_reference
        store = ExperimentStore(tmp_path, keep_last_n=2)
        self._checkpoints(store, scenario, rounds=2)
        store.clear_checkpoint(scenario, "FMore", 0)
        assert store.load_checkpoint(scenario, "FMore", 0) is None
        assert store.checkpoint_rounds(scenario, "FMore", 0) == []

    def test_retention_arguments_validated(self, tmp_path):
        with pytest.raises(ValueError):
            ExperimentStore(tmp_path, keep_last_n=0)
        with pytest.raises(ValueError):
            ExperimentStore(tmp_path, keep_every_k=0)


class TestAuctionEnv:
    def test_reset_observation_shape(self, base_reference):
        scenario, _ = base_reference
        env = AuctionEnv(scenario, scheme="FMore", seed=0)
        obs = env.reset()
        for key in (
            "round_index",
            "rounds_remaining",
            "n_clients",
            "k_winners",
            "theta",
            "capacity",
            "equilibrium_quality",
            "equilibrium_payment",
            "last_threshold",
        ):
            assert key in obs
        assert obs["round_index"] == 1 and obs["last_threshold"] is None

    def test_truthful_episode_matches_rounds(self, base_reference):
        scenario, _ = base_reference
        env = AuctionEnv(scenario, scheme="FMore", seed=0)
        env.reset()
        rewards, done = [], False
        while not done:
            _, reward, done, info = env.step(None)
            rewards.append(reward)
            assert isinstance(info["won"], bool)
        assert len(rewards) == scenario.n_rounds

    def test_absurd_overbid_loses(self, base_reference):
        scenario, _ = base_reference
        env = AuctionEnv(scenario, scheme="FMore", seed=0)
        obs = env.reset()
        _, reward, _, info = env.step(1000.0 * obs["equilibrium_payment"])
        assert info["won"] is False and reward == 0.0

    def test_snapshot_restore_replays_identically(self, base_reference):
        scenario, _ = base_reference
        env = AuctionEnv(scenario, scheme="FMore", seed=0)
        env.reset()
        env.step(None)
        checkpoint = env.snapshot()
        _, reward_a, done_a, info_a = env.step(0.9)
        env.restore(checkpoint)
        _, reward_b, done_b, info_b = env.step(0.9)
        assert (reward_a, done_a, info_a["won"]) == (
            reward_b,
            done_b,
            info_b["won"],
        )

    def test_malformed_action_rejected(self, base_reference):
        scenario, _ = base_reference
        env = AuctionEnv(scenario, scheme="FMore", seed=0)
        env.reset()
        with pytest.raises(ValueError):
            env.step([1.0, 2.0])  # neither scalar nor m+1 vector

    def test_selection_only_schemes_rejected(self, base_reference):
        scenario, _ = base_reference
        env = AuctionEnv(scenario.with_(schemes=("RandFL",)), scheme="RandFL")
        with pytest.raises(ValueError):
            env.reset()


class TestIncentiveSweep:
    def test_sweep_mechanics_and_exports(self, tmp_path):
        scenario = _scenario(n_rounds=2)
        report = run_incentive_sweep(
            scenario,
            store=tmp_path,
            deviations=[{"name": "fixed_markup", "markup": 0.5}],
            fraction=0.3,
        )
        assert [r.policy for r in report.rows] == ["fixed_markup"]
        row = report.rows[0]
        assert row.scheme == "FMore"
        assert row.ic_gap == pytest.approx(
            row.deviant_payoff - row.truthful_payoff
        )
        markdown = report.to_markdown()
        assert "fixed_markup" in markdown and "| FMore |" in markdown
        csv_path = tmp_path / "ic.csv"
        report.to_csv(csv_path)
        assert csv_path.read_text().startswith("scheme,policy,")
        # The sweep went through the store: manifests for control + variant.
        assert len(list((tmp_path / "runs").rglob("FMore-seed0.json"))) == 2

    def test_fraction_rounding_to_zero_nodes_fails_loudly(self, tmp_path):
        scenario = _scenario(n_rounds=1)
        with pytest.raises(ValueError, match="fraction"):
            run_incentive_sweep(
                scenario, store=tmp_path, deviations=[], fraction=0.01
            )


class TestClaimShuffle:
    def test_shuffled_claims_stay_exclusive_and_drain(self, tmp_path):
        scenario = _scenario(schemes=("FMore", "RandFL"), seeds=(0, 1, 2))
        cells = [(s, seed) for s in scenario.schemes for seed in scenario.seeds]
        queue = JobQueue(tmp_path)
        queue.enqueue(scenario, cells)
        claimed = []
        workers = [JobQueue(tmp_path), JobQueue(tmp_path)]
        while True:
            job = workers[len(claimed) % 2].claim(f"w{len(claimed) % 2}")
            if job is None:
                break
            claimed.append(job.cell)
        assert sorted(claimed) == sorted(cells)

    def test_scan_order_is_deterministic_per_worker_and_pass(self, tmp_path):
        scenario = _scenario(schemes=("FMore", "RandFL"), seeds=(0, 1, 2, 3))
        cells = [(s, seed) for s in scenario.schemes for seed in scenario.seeds]
        JobQueue(tmp_path).enqueue(scenario, cells)
        first = JobQueue(tmp_path).claim("worker-a")
        # A fresh queue with the same label repeats the same scan order.
        again = JobQueue(tmp_path).claim("worker-a")
        assert first is not None and again is not None
        assert again.cell != first.cell  # first pick is locked, so the
        # second claimer walks the same shuffled order and takes the next.
