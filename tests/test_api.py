"""Tests for the declarative API: registries, Scenario, FMoreEngine.

Pins the contracts the README documents: registry round-trips, Scenario
JSON round-trips, exact engine-vs-legacy equivalence, bitwise agreement
of the vectorised ``bid_batch`` with the per-bid loop, and one grid build
per advertised game across a multi-seed run.
"""

import numpy as np
import pytest

from repro.api import FMoreEngine, Scenario
from repro.core import (
    CobbDouglasScore,
    EquilibriumSolver,
    LinearCost,
    MultiplicativeScore,
    PowerCost,
    PrivateValueModel,
    ScaledBetaTheta,
    UniformTheta,
)
from repro.core.psi import PsiSelection
from repro.core.registry import (
    COST_MODELS,
    MARGIN_METHODS,
    PAYMENT_RULES,
    SCORING_RULES,
    THETA_DISTRIBUTIONS,
    WINNER_SELECTIONS,
    Registry,
)


class TestRegistry:
    def test_decorator_registration_and_create(self):
        reg = Registry("widget")

        @reg.register("box")
        class Box:
            def __init__(self, size=1):
                self.size = size

        assert "box" in reg
        assert reg.names() == ("box",)
        assert reg.create("box").size == 1
        assert reg.create({"name": "box", "size": 7}).size == 7
        assert reg.create({"name": "box"}, size=9).size == 9

    def test_duplicate_name_rejected(self):
        reg = Registry("widget")
        reg.register("a", lambda: 1)
        with pytest.raises(ValueError, match="already registered"):
            reg.register("a", lambda: 2)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(KeyError, match="linear"):
            COST_MODELS.get("cubic")
        with pytest.raises(KeyError):
            SCORING_RULES.create({"name": "nope"})

    def test_spec_requires_name(self):
        with pytest.raises(ValueError, match="name"):
            COST_MODELS.create({"betas": [1.0]})

    def test_bad_params_report_component(self):
        with pytest.raises(TypeError, match="linear"):
            COST_MODELS.create({"name": "linear", "bogus": 3})

    @pytest.mark.parametrize(
        "registry, spec, cls, attr, expected",
        [
            (COST_MODELS, {"name": "linear", "betas": [4.0, 2.0]}, LinearCost, "betas", [4.0, 2.0]),
            (COST_MODELS, {"name": "power", "betas": [1.0], "gammas": 3.0}, PowerCost, "gammas", [3.0]),
            (SCORING_RULES, {"name": "multiplicative", "n_dimensions": 2, "scale": 25.0}, MultiplicativeScore, "scale", 25.0),
            (SCORING_RULES, {"name": "cobb_douglas", "weights": [0.6, 0.4]}, CobbDouglasScore, "weights", [0.6, 0.4]),
            (THETA_DISTRIBUTIONS, {"name": "uniform", "lo": 0.1, "hi": 1.0}, UniformTheta, "hi", 1.0),
            (THETA_DISTRIBUTIONS, {"name": "scaled_beta", "lo": 0.1, "hi": 1.0, "a": 2.0, "b": 5.0}, ScaledBetaTheta, "b", 5.0),
            (WINNER_SELECTIONS, {"name": "psi", "psi": 0.7}, PsiSelection, "psi", 0.7),
        ],
    )
    def test_round_trip_name_create_same_params(self, registry, spec, cls, attr, expected):
        obj = registry.create(spec)
        assert isinstance(obj, cls)
        value = getattr(obj, attr)
        if isinstance(value, np.ndarray):
            assert value.tolist() == expected
        else:
            assert value == pytest.approx(expected)

    def test_expected_families_registered(self):
        assert set(SCORING_RULES.names()) >= {
            "additive", "perfect_complementary", "cobb_douglas", "multiplicative",
        }
        assert set(COST_MODELS.names()) >= {"linear", "quadratic", "power"}
        assert set(THETA_DISTRIBUTIONS.names()) >= {
            "uniform", "truncated_normal", "scaled_beta",
        }
        assert set(WINNER_SELECTIONS.names()) >= {"top_k", "psi", "per_node_psi"}
        assert set(PAYMENT_RULES.names()) == {"first_score", "second_score"}
        assert set(MARGIN_METHODS.names()) == {"quadrature", "euler", "rk4"}


class TestScenario:
    def test_json_round_trip(self):
        scenario = Scenario.from_preset("smoke", "mnist_o", seeds=(0, 1))
        again = Scenario.from_json(scenario.to_json())
        assert again == scenario

    def test_dict_round_trip_preserves_tuples(self):
        scenario = Scenario.from_preset("bench", "cifar10")
        again = Scenario.from_dict(scenario.to_dict())
        assert again.size_range == scenario.size_range
        assert isinstance(again.seeds, tuple)
        assert again == scenario

    def test_from_preset_matches_from_config(self):
        from repro.sim import preset

        assert Scenario.from_preset("smoke", "mnist_f") == Scenario.from_config(
            preset("smoke", "mnist_f")
        )

    def test_config_round_trip(self):
        from repro.sim import preset

        cfg = preset("bench", "mnist_o")
        assert Scenario.from_config(cfg).to_config() == cfg

    def test_to_config_rejects_non_canonical_specs(self):
        scenario = Scenario.from_preset("smoke", "mnist_o").with_(
            cost={"name": "quadratic", "betas": [1.0, 1.0]}
        )
        with pytest.raises(ValueError, match="FMoreEngine"):
            scenario.to_config()

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="warp_speed"):
            Scenario.from_dict({"warp_speed": 9})

    def test_validation(self):
        with pytest.raises(ValueError):
            Scenario(n_clients=10, k_winners=11)
        with pytest.raises(ValueError):
            Scenario(schemes=("Oracle",))
        with pytest.raises(ValueError):
            Scenario(seeds=())
        with pytest.raises(ValueError):
            Scenario(scoring={"name": "nope"})
        with pytest.raises(ValueError):
            Scenario(payment_rule="third_score")
        with pytest.raises(ValueError):
            Scenario(psi=1.5)

    def test_with_overrides_parses_cli_values(self):
        scenario = Scenario().with_overrides(
            ["n_rounds=5", "seeds=0,1,2", "schemes=FMore,RandFL", "psi=null", "lr=0.05"]
        )
        assert scenario.n_rounds == 5
        assert scenario.seeds == (0, 1, 2)
        assert scenario.schemes == ("FMore", "RandFL")
        assert scenario.psi is None
        assert scenario.lr == 0.05

    def test_with_overrides_accepts_scalar_seeds_and_schemes(self):
        """`--set seeds=0` / `--set schemes=FMore` parse to scalars; the
        scenario must lift them to one-element tuples, not iterate them."""
        scenario = Scenario().with_overrides(["seeds=0", "schemes=FMore"])
        assert scenario.seeds == (0,)
        assert scenario.schemes == ("FMore",)

    def test_with_overrides_rejects_unknown_key(self):
        # The message must list the valid override paths (satellite of the
        # policy-pipeline redesign: no opaque constructor errors).
        with pytest.raises(ValueError, match="unknown scenario override"):
            Scenario().with_overrides(["rounds=5"])
        with pytest.raises(ValueError, match="valid paths"):
            Scenario().with_overrides(["rounds=5"])

    def test_with_overrides_dotted_spec_paths(self):
        scenario = Scenario().with_overrides(
            ["scoring.scale=30", "execution.max_workers=3"]
        )
        assert scenario.scoring["scale"] == 30
        assert scenario.execution["max_workers"] == 3
        # Untouched sibling keys survive the nested merge.
        assert scenario.scoring["name"] == "multiplicative"

    def test_with_overrides_dotted_policy_paths(self):
        scenario = Scenario().with_overrides(
            ['policies.selection={"name": "psi", "psi": 0.7}']
        ).with_overrides(["policies.selection.psi=0.4"])
        assert scenario.policies["selection"] == {"name": "psi", "psi": 0.4}

    def test_with_overrides_dotted_rejects_non_spec_fields(self):
        with pytest.raises(ValueError, match="does not support dotted"):
            Scenario().with_overrides(["seeds.0=1"])
        with pytest.raises(ValueError, match="unknown scenario override"):
            Scenario().with_overrides(["bogus.name=linear"])


@pytest.fixture(scope="module")
def smoke_scenario():
    return Scenario.from_preset(
        "smoke", "mnist_o", schemes=("FMore", "RandFL", "FixFL"), seeds=(0,)
    )


class TestEngine:
    def test_engine_matches_run_seeds_surface(self, smoke_scenario):
        """The config-based multi-seed runner is a consumer of the engine."""
        from repro.sim import preset
        from repro.sim.runner import run_seeds

        result = FMoreEngine().run(smoke_scenario)
        grouped = run_seeds(
            preset("smoke", "mnist_o"), ("FMore", "RandFL", "FixFL"), (0,)
        )
        assert set(grouped) == set(smoke_scenario.schemes)
        for scheme, histories in grouped.items():
            mine = result.history(scheme)
            history = histories[0]
            assert mine.scheme == history.scheme
            assert mine.accuracies == history.accuracies
            assert mine.losses == history.losses
            assert mine.total_payment == history.total_payment
            assert [r.winner_ids for r in mine.records] == [
                r.winner_ids for r in history.records
            ]

    def test_scenario_json_round_trip_same_histories(self, smoke_scenario):
        """A serialized scenario runs to the same result (CLI contract)."""
        scenario = smoke_scenario.with_(schemes=("FMore",), n_rounds=2)
        a = FMoreEngine().run(scenario)
        b = FMoreEngine().run(Scenario.from_json(scenario.to_json()))
        assert a.history("FMore").accuracies == b.history("FMore").accuracies
        assert a.history("FMore").total_payment == b.history("FMore").total_payment

    def test_solver_cached_across_seeds_and_schemes(self, smoke_scenario):
        """Acceptance: a 3-seed run builds the equilibrium grid once."""
        engine = FMoreEngine()
        scenario = smoke_scenario.with_(
            schemes=("FMore", "PsiFMore"), seeds=(0, 1, 2), n_rounds=1
        )
        engine.run(scenario)
        assert engine.cache_misses == 1
        assert engine.cache_hits == 2  # one build, reused by seeds 1 and 2

    def test_run_seeds_builds_grid_once(self, monkeypatch):
        """The legacy multi-seed runner inherits the cache."""
        from repro.core import equilibrium
        from repro.sim import preset
        from repro.sim.runner import run_seeds

        builds = []
        original = equilibrium.EquilibriumSolver._build_tables

        def counting(self):
            builds.append(1)
            return original(self)

        monkeypatch.setattr(equilibrium.EquilibriumSolver, "_build_tables", counting)
        cfg = preset("smoke", "mnist_o").with_(n_rounds=1)
        histories = run_seeds(cfg, ("FMore",), (0, 1, 2))
        assert len(histories["FMore"]) == 3
        assert len(builds) == 1

    def test_different_game_different_cache_entry(self, smoke_scenario):
        engine = FMoreEngine()
        engine.solver_for(smoke_scenario)
        engine.solver_for(smoke_scenario)  # hit
        engine.solver_for(smoke_scenario.with_(grid_size=33))  # new game
        assert engine.cache_misses == 2
        assert engine.cache_hits == 1

    def test_registry_spec_reaches_the_game(self, smoke_scenario):
        """Swapping the theta spec changes the solver's distribution."""
        scenario = smoke_scenario.with_(
            theta={"name": "scaled_beta", "lo": 0.1, "hi": 1.0, "a": 2.0, "b": 5.0}
        )
        solver = FMoreEngine().solver_for(scenario)
        assert isinstance(solver.model.distribution, ScaledBetaTheta)


@pytest.fixture(scope="module")
def sim_solver():
    return EquilibriumSolver(
        MultiplicativeScore(2, 25.0),
        LinearCost([4.0, 2.0]),
        PrivateValueModel(UniformTheta(0.1, 1.0), 30, 6),
        [[0.01, 5.0], [0.05, 1.0]],
        grid_size=65,
    )


class TestBidBatch:
    def test_agrees_with_per_bid_loop_capped(self, sim_solver):
        rng = np.random.default_rng(0)
        thetas = np.asarray(sim_solver.model.distribution.sample(rng, 64))
        caps = np.column_stack(
            [rng.uniform(0.3, 5.0, 64), rng.uniform(0.1, 1.0, 64)]
        )
        qualities, payments = sim_solver.bid_batch(thetas, caps)
        for i, (theta, cap) in enumerate(zip(thetas, caps)):
            q, p = sim_solver.bid_with_capacity(float(theta), cap)
            np.testing.assert_array_equal(qualities[i], q)
            assert payments[i] == p

    def test_agrees_with_per_bid_loop_uncapped(self, sim_solver):
        rng = np.random.default_rng(1)
        thetas = np.asarray(sim_solver.model.distribution.sample(rng, 64))
        qualities, payments = sim_solver.bid_batch(thetas)
        for i, theta in enumerate(thetas):
            q, p = sim_solver.bid(float(theta))
            np.testing.assert_array_equal(qualities[i], q)
            assert payments[i] == p

    def test_empty_population(self, sim_solver):
        qualities, payments = sim_solver.bid_batch(np.empty(0))
        assert qualities.shape == (0, 2)
        assert payments.shape == (0,)

    def test_shape_validation(self, sim_solver):
        with pytest.raises(ValueError, match="1-D"):
            sim_solver.bid_batch(np.ones((2, 2)))
        with pytest.raises(ValueError, match="\\(n, m\\)"):
            sim_solver.bid_batch(np.asarray([0.5]), np.ones((2, 2)))
        with pytest.raises(ValueError, match="support"):
            sim_solver.bid_batch(np.asarray([5.0]))

    def test_mechanism_batch_path_matches_sequential_make_bid(self, sim_solver):
        """run_round's batched collection == per-agent make_bid, exactly."""
        from repro.core.auction import MultiDimensionalProcurementAuction
        from repro.core.mechanism import FMoreMechanism
        from repro.mec.node import EdgeNode
        from repro.mec.resources import ResourceProfile, UniformAvailabilityDynamics

        def agents():
            return [
                EdgeNode(
                    node_id=i,
                    theta=0.1 + 0.8 * i / 19,
                    solver=sim_solver,
                    profile=ResourceProfile(
                        data_size=500 + 200 * i, category_proportion=0.2 + 0.04 * i
                    ),
                    dynamics=UniformAvailabilityDynamics(0.4),
                    theta_jitter=0.2,
                )
                for i in range(20)
            ]

        auction = MultiDimensionalProcurementAuction(sim_solver.quality_rule, 6)
        record = FMoreMechanism(auction).run_round(
            agents(), 3, np.random.default_rng(42)
        )
        rng = np.random.default_rng(42)
        expected = {}
        for agent in agents():
            bid = agent.make_bid(3, rng)
            if bid is not None:
                expected[agent.node_id] = (bid.quality, bid.payment)
        got = {
            sb.node_id: (sb.bid.quality, sb.bid.payment)
            for sb in record.outcome.scored_bids
        }
        assert set(got) == set(expected)
        for node_id, (quality, payment) in expected.items():
            np.testing.assert_array_equal(got[node_id][0], quality)
            assert got[node_id][1] == payment

    def test_overridden_make_bid_not_bypassed_by_batch_path(self, sim_solver):
        """A subclass customising make_bid alone must keep its override."""
        from repro.core.auction import MultiDimensionalProcurementAuction
        from repro.core.bids import Bid
        from repro.core.mechanism import FMoreMechanism
        from repro.mec.node import EdgeNode
        from repro.mec.resources import ResourceProfile

        class ShadedNode(EdgeNode):
            def make_bid(self, round_index, rng):
                bid = super().make_bid(round_index, rng)
                if bid is None:
                    return None
                return Bid(bid.node_id, bid.quality, bid.payment + 100.0)

        agents = [
            ShadedNode(
                node_id=i,
                theta=0.2 + 0.1 * i,
                solver=sim_solver,
                profile=ResourceProfile(data_size=1000, category_proportion=0.5),
            )
            for i in range(4)
        ]
        auction = MultiDimensionalProcurementAuction(sim_solver.quality_rule, 2)
        record = FMoreMechanism(auction).run_round(
            agents, 1, np.random.default_rng(0)
        )
        # Every collected bid must carry the override's +100 shading.
        assert record.accounting.n_bids == 4
        for sb in record.outcome.scored_bids:
            assert sb.bid.payment > 100.0


class TestCLI:
    def test_run_with_scenario_file(self, tmp_path, capsys):
        from repro.__main__ import main

        scenario = Scenario.from_preset(
            "smoke", "mnist_o", schemes=("RandFL", "FMore"), seeds=(0,)
        ).with_(n_rounds=1)
        path = tmp_path / "scenario.json"
        path.write_text(scenario.to_json())
        assert main(["run", "--scenario", str(path)]) == 0
        out = capsys.readouterr().out
        assert "RandFL" in out and "FMore" in out
        assert "solver cache: 1 build(s)" in out

    def test_scenario_command_round_trips(self, capsys):
        from repro.__main__ import main

        assert main(["scenario", "--preset", "smoke", "--set", "seeds=0,1"]) == 0
        out = capsys.readouterr().out
        scenario = Scenario.from_json(out)
        assert scenario.seeds == (0, 1)
        assert scenario.name == "smoke-mnist_o"

    def test_compare_accepts_schemes_flag(self, capsys):
        from repro.__main__ import main

        assert main(
            ["compare", "mnist_o", "--schemes", "RandFL,FixFL", "--rounds", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "RandFL" in out and "FixFL" in out
        assert "FMore" not in out

    def test_compare_rejects_unknown_scheme(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit):
            main(["compare", "mnist_o", "--schemes", "Oracle"])

    def test_psifmore_reachable_from_cli(self, capsys):
        """The satellite fix: PsiFMore can be compared from the CLI."""
        from repro.__main__ import main

        assert main(
            [
                "run",
                "--preset",
                "smoke",
                "--schemes",
                "PsiFMore",
                "--set",
                "n_rounds=1",
                "--set",
                "psi=0.8",
            ]
        ) == 0
        assert "PsiFMore" in capsys.readouterr().out
