"""Tests for client, server (FedAvg), metrics and the trainer loop."""

import numpy as np
import pytest

from repro.fl.client import FLClient, LocalUpdate
from repro.fl.datasets import make_generator
from repro.fl.metrics import (
    accuracy_improvement,
    round_reduction,
    rounds_to_accuracy,
    speedup_percent,
    time_to_accuracy,
)
from repro.fl.nn import Dense, ReLU, SGD, Sequential
from repro.fl.partition import ClientData, heterogeneous_specs, materialize_clients
from repro.fl.selection import FixedSelection, RandomSelection
from repro.fl.server import FedAvgServer, federated_average
from repro.fl.trainer import FederatedTrainer, TrainingHistory, RoundRecord


def tiny_model(rng, dim=8):
    return Sequential(lambda: [Dense(8), ReLU(), Dense(10)], (dim,), optimizer=SGD(0.1), rng=rng)


def make_update(weights, n):
    return LocalUpdate(client_id=0, weights=weights, n_samples=n, train_loss=0.0)


class TestFederatedAverage:
    def test_weighted_mean_eq3(self):
        w_a = [np.array([0.0, 0.0])]
        w_b = [np.array([3.0, 6.0])]
        updates = [
            LocalUpdate(0, w_a, n_samples=1, train_loss=0.0),
            LocalUpdate(1, w_b, n_samples=2, train_loss=0.0),
        ]
        avg = federated_average(updates)
        np.testing.assert_allclose(avg[0], [2.0, 4.0])

    def test_single_update_identity(self):
        w = [np.array([1.0, 2.0]), np.array([[3.0]])]
        avg = federated_average([LocalUpdate(0, w, 5, 0.0)])
        for a, b in zip(avg, w):
            np.testing.assert_allclose(a, b)

    def test_zero_samples_falls_back_to_uniform(self):
        updates = [
            LocalUpdate(0, [np.array([0.0])], 0, 0.0),
            LocalUpdate(1, [np.array([4.0])], 0, 0.0),
        ]
        np.testing.assert_allclose(federated_average(updates)[0], [2.0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            federated_average([])

    def test_mismatched_parameter_count_rejected(self):
        updates = [
            LocalUpdate(0, [np.array([0.0])], 1, 0.0),
            LocalUpdate(1, [np.array([1.0]), np.array([2.0])], 1, 0.0),
        ]
        with pytest.raises(ValueError):
            federated_average(updates)


class TestFLClient:
    def make_client_data(self, rng, counts):
        gen = make_generator("mnist_o", seed=0)
        x, y = gen.sample_mixed(counts, rng)
        x = x.reshape(x.shape[0], -1)[:, :8]  # flat tiny features for MLP
        return ClientData(0, x, y, 10)

    def test_train_returns_update(self, rng):
        data = self.make_client_data(rng, {0: 20, 1: 20})
        client = FLClient(data, local_epochs=1, batch_size=8)
        model = tiny_model(rng)
        update = client.train(model, model.get_weights(), rng)
        assert update.n_samples == 40
        assert len(update.weights) == 4

    def test_declared_subset_trains_on_fewer(self, rng):
        data = self.make_client_data(rng, {0: 30, 1: 30})
        client = FLClient(data)
        model = tiny_model(rng)
        update = client.train(model, model.get_weights(), rng, declared_samples=20)
        assert update.n_samples == 20

    def test_training_changes_weights(self, rng):
        data = self.make_client_data(rng, {0: 20, 1: 20})
        client = FLClient(data)
        model = tiny_model(rng)
        before = model.get_weights()
        update = client.train(model, before, rng)
        assert any(
            not np.allclose(a, b) for a, b in zip(update.weights, before)
        )

    def test_empty_client_returns_global(self, rng):
        data = ClientData(0, np.empty((0, 8)), np.empty(0, dtype=int), 10)
        client = FLClient(data)
        model = tiny_model(rng)
        g = model.get_weights()
        update = client.train(model, g, rng)
        assert update.n_samples == 0
        for a, b in zip(update.weights, g):
            np.testing.assert_array_equal(a, b)

    def test_invalid_args(self, rng):
        data = self.make_client_data(rng, {0: 4})
        with pytest.raises(ValueError):
            FLClient(data, local_epochs=0)
        with pytest.raises(ValueError):
            FLClient(data, batch_size=0)


class TestFedAvgServer:
    def test_broadcast_returns_copies(self, rng):
        server = FedAvgServer(tiny_model(rng))
        w = server.broadcast()
        w[0][...] = 99.0
        assert not np.allclose(server.model.get_weights()[0], 99.0)

    def test_aggregate_installs_mean(self, rng):
        server = FedAvgServer(tiny_model(rng))
        w = server.broadcast()
        shifted = [p + 1.0 for p in w]
        server.aggregate(
            [LocalUpdate(0, w, 1, 0.0), LocalUpdate(1, shifted, 1, 0.0)]
        )
        for a, b in zip(server.model.get_weights(), w):
            np.testing.assert_allclose(a, b + 0.5)


class TestMetrics:
    def test_rounds_to_accuracy(self):
        assert rounds_to_accuracy([0.1, 0.5, 0.9], 0.5) == 2
        assert rounds_to_accuracy([0.1, 0.2], 0.5) is None

    def test_time_to_accuracy(self):
        assert time_to_accuracy([0.1, 0.6], [10.0, 25.0], 0.5) == 25.0
        assert time_to_accuracy([0.1, 0.2], [10.0, 25.0], 0.5) is None

    def test_round_reduction(self):
        assert round_reduction(20, 10) == pytest.approx(50.0)
        assert round_reduction(None, 10) is None

    def test_accuracy_improvement(self):
        assert accuracy_improvement(0.5, 0.64) == pytest.approx(28.0)

    def test_speedup_percent(self):
        assert speedup_percent(100.0, 61.6) == pytest.approx(38.4)


class TestTrainingHistory:
    def make_history(self):
        h = TrainingHistory("X")
        for i, acc in enumerate([0.2, 0.5, 0.8], start=1):
            h.records.append(
                RoundRecord(i, acc, 1.0 - acc, [i], total_payment=float(i), round_seconds=2.0)
            )
        return h

    def test_series(self):
        h = self.make_history()
        assert h.accuracies == [0.2, 0.5, 0.8]
        assert h.cumulative_seconds == [2.0, 4.0, 6.0]
        assert h.total_payment == 6.0
        assert h.final_accuracy == 0.8
        assert h.rounds_to(0.5) == 2

    def test_winner_counts(self):
        h = self.make_history()
        assert h.winner_counts() == {1: 1, 2: 1, 3: 1}


class TestFederatedTrainerLoop:
    def build(self, rng, selection_cls):
        gen = make_generator("mnist_o", seed=0)
        specs = heterogeneous_specs(6, 10, rng, size_range=(20, 40))
        datas = materialize_clients(gen, specs, rng)
        for d in datas:
            d.x = d.x.reshape(d.x.shape[0], -1)[:, :8]
        clients = [FLClient(d, batch_size=8) for d in datas]
        server = FedAvgServer(tiny_model(rng))
        tx, ty = gen.test_set(5, rng)
        tx = tx.reshape(tx.shape[0], -1)[:, :8]
        ids = [c.client_id for c in clients]
        if selection_cls is RandomSelection:
            sel = RandomSelection(ids, 2)
        else:
            sel = FixedSelection(ids, 2, rng)
        return FederatedTrainer(server, clients, sel, tx, ty, rng)

    def test_run_produces_history(self, rng):
        trainer = self.build(rng, RandomSelection)
        history = trainer.run(3)
        assert len(history.records) == 3
        assert all(len(r.winner_ids) == 2 for r in history.records)

    def test_fixed_selection_repeats(self, rng):
        trainer = self.build(rng, FixedSelection)
        history = trainer.run(3)
        first = history.records[0].winner_ids
        assert all(r.winner_ids == first for r in history.records)

    def test_rejects_zero_rounds(self, rng):
        trainer = self.build(rng, RandomSelection)
        with pytest.raises(ValueError):
            trainer.run(0)

    def test_duplicate_client_ids_rejected(self, rng):
        gen = make_generator("mnist_o", seed=0)
        specs = heterogeneous_specs(2, 10, rng, size_range=(10, 20))
        datas = materialize_clients(gen, specs, rng)
        for d in datas:
            d.x = d.x.reshape(d.x.shape[0], -1)[:, :8]
            d.client_id = 0
        clients = [FLClient(d, batch_size=4) for d in datas]
        server = FedAvgServer(tiny_model(rng))
        with pytest.raises(ValueError):
            FederatedTrainer(
                server, clients, RandomSelection([0], 1), np.zeros((1, 8)), np.zeros(1, int), rng
            )
