"""Within-round local-training pool: RNG discipline, errors, fl_pool path.

Companions to the integration battery in ``test_session.py``: these tests
pin the trainer-level contracts of the ``local_executor`` fan-out —

* a winner id with no registered client raises a ``ValueError`` naming the
  id (never a bare ``KeyError``), while the hierarchical ``fl_pool``
  modulo mapping keeps resolving out-of-pool ids;
* each winner's stochastic draws come from its own derived stream
  (``rng_from(entropy, "local-train-{id}")``), pinned by golden hashes so
  the derivation can never silently change;
* the shared round stream advances exactly once per round in local mode —
  data-loader-style draws (subset choice, shuffling, step-cap sampling)
  happen inside the derived stream, not the round stream.
"""

import hashlib

import numpy as np
import pytest

from repro.api.engine import _PooledClients
from repro.api.executor import SerialExecutor, ThreadExecutor
from repro.fl.client import FLClient
from repro.fl.models import build_model
from repro.fl.partition import ClientData
from repro.fl.selection import SelectionResult, SelectionStrategy
from repro.fl.server import FedAvgServer
from repro.fl.trainer import FederatedTrainer
from repro.sim.rng import rng_from

N_CLASSES = 10


class FixedSelection(SelectionStrategy):
    """Deterministic winner list — no draws from the round stream."""

    name = "fixed"

    def __init__(self, winner_ids, declared=40):
        self.winner_ids = list(winner_ids)
        self.declared = declared

    def select(self, round_index, rng):
        return SelectionResult(
            winner_ids=list(self.winner_ids),
            declared_samples={w: self.declared for w in self.winner_ids},
        )


def make_clients(n=5, per_client=40, seed=7, batch_size=16):
    rng = np.random.default_rng(seed)
    out = []
    for i in range(n):
        x = rng.random((per_client, 8, 8, 1))
        y = rng.integers(0, N_CLASSES, per_client)
        out.append(FLClient(ClientData(i, x, y, N_CLASSES), batch_size=batch_size))
    return out


def make_trainer(clients, winner_ids, local_executor=None, seed=1):
    rng = np.random.default_rng(seed)
    test_x = rng.random((30, 8, 8, 1))
    test_y = rng.integers(0, N_CLASSES, 30)
    model = build_model("mnist_o", (8, 8, 1), N_CLASSES, rng_from(seed, "model"), width=0.25)
    return FederatedTrainer(
        FedAvgServer(model),
        clients,
        FixedSelection(winner_ids),
        test_x,
        test_y,
        rng_from(seed, "train"),
        local_executor=local_executor,
    )


class TestMissingWinnerErrors:
    def test_missing_winner_raises_value_error_naming_id(self):
        trainer = make_trainer(make_clients(3), winner_ids=[0, 99])
        with pytest.raises(ValueError, match=r"winner id 99"):
            trainer.run_round(1)

    def test_missing_winner_in_local_mode_names_id_too(self):
        trainer = make_trainer(
            make_clients(3), winner_ids=[1, 42], local_executor=SerialExecutor()
        )
        with pytest.raises(ValueError, match=r"winner id 42"):
            trainer.run_round(1)

    def test_error_is_not_a_bare_keyerror(self):
        trainer = make_trainer(make_clients(3), winner_ids=[7])
        with pytest.raises(Exception) as excinfo:
            trainer.run_round(1)
        assert not isinstance(excinfo.value, KeyError)

    def test_pooled_clients_resolve_out_of_pool_ids(self):
        """The hierarchical fl_pool modulo mapping must keep working."""
        clients = make_clients(3)
        pooled = _PooledClients(clients)
        trainer = make_trainer(pooled, winner_ids=[100001, 100002])
        record = trainer.run_round(1)
        assert record.winner_ids == [100001, 100002]
        assert record.mean_train_loss > 0.0

    def test_pooled_clients_resolve_in_local_mode(self):
        clients = make_clients(3)
        pooled = _PooledClients(clients)
        trainer = make_trainer(
            pooled, winner_ids=[100001, 100002], local_executor=ThreadExecutor(max_workers=2)
        )
        record = trainer.run_round(1)
        assert record.winner_ids == [100001, 100002]
        assert record.mean_train_loss > 0.0


class TestConstruction:
    def test_rejects_store_coordinated_local_executor(self):
        class FakeStoreExecutor:
            needs_store = True
            in_process = True

        with pytest.raises(ValueError, match="local_executor"):
            make_trainer(make_clients(2), [0], local_executor=FakeStoreExecutor())


GOLDEN_STREAM_HASHES = {
    0: "3513f55dd8c864e502347ba8c1bdc6b288e56cae6e298379fbdf6727db641d15",
    7: "affa2917dfdf72a5a59d05ffae16fbb3322636221bdaeb7b7878559513e6775c",
    123456: "efb6dc357924a6ba151430158462d4cb8eb79bd43ae409ed549ad0238e5cdcc3",
}


class TestRngDiscipline:
    def test_derived_stream_golden_hashes(self):
        """Pin the per-winner stream derivation byte-for-byte.

        A change to the stream-name template or the seed plumbing would
        silently invalidate every stored local-training manifest; these
        hashes make such a change an explicit, reviewed test edit.
        """
        for wid, expected in GOLDEN_STREAM_HASHES.items():
            stream = rng_from(987654321, f"local-train-{wid}")
            draws = stream.integers(2**63, size=4, dtype=np.int64)
            assert hashlib.sha256(draws.tobytes()).hexdigest() == expected

    def test_round_stream_advances_exactly_once_per_round(self):
        """Local mode draws one entropy per round from the round stream."""
        trainer = make_trainer(
            make_clients(4), winner_ids=[0, 1, 2], local_executor=SerialExecutor()
        )
        # Snapshot after construction: building the scratch replica in
        # __init__ legitimately consumes round-stream draws.
        shadow = np.random.default_rng()
        shadow.bit_generator.state = trainer.rng.bit_generator.state
        trainer.run_round(1)
        shadow.integers(2**63)  # the single entropy draw
        assert trainer.rng.bit_generator.state == shadow.bit_generator.state

    def test_round_stream_advance_is_independent_of_k(self):
        t_one = make_trainer(make_clients(4), winner_ids=[0], local_executor=SerialExecutor())
        t_three = make_trainer(
            make_clients(4), winner_ids=[0, 1, 2], local_executor=SerialExecutor()
        )
        t_one.run_round(1)
        t_three.run_round(1)
        assert (
            t_one.rng.bit_generator.state == t_three.rng.bit_generator.state
        ), "round-stream position must not depend on the winner count"

    def test_client_draws_come_from_derived_stream(self):
        """The generator each client trains with IS the derived stream."""
        seen = {}

        class RecordingClient(FLClient):
            def train(self, scratch_model, global_weights, rng, declared_samples=None):
                seen[self.client_id] = rng.integers(2**63, size=4, dtype=np.int64)
                return super().train(scratch_model, global_weights, rng, declared_samples)

        rng = np.random.default_rng(7)
        clients = [
            RecordingClient(
                ClientData(
                    i, rng.random((40, 8, 8, 1)), rng.integers(0, N_CLASSES, 40), N_CLASSES
                ),
                batch_size=16,
            )
            for i in range(3)
        ]
        trainer = make_trainer(clients, winner_ids=[0, 2], local_executor=SerialExecutor())
        shadow = np.random.default_rng()
        shadow.bit_generator.state = trainer.rng.bit_generator.state
        trainer.run_round(1)
        entropy = int(shadow.integers(2**63))
        for wid in (0, 2):
            expected = rng_from(entropy, f"local-train-{wid}").integers(
                2**63, size=4, dtype=np.int64
            )
            np.testing.assert_array_equal(seen[wid], expected)

    def test_legacy_mode_still_uses_shared_round_stream(self):
        """Without local_executor the historical schedule is untouched."""
        seen = []

        class RecordingClient(FLClient):
            def train(self, scratch_model, global_weights, rng, declared_samples=None):
                seen.append(rng)
                return super().train(scratch_model, global_weights, rng, declared_samples)

        rng = np.random.default_rng(7)
        clients = [
            RecordingClient(
                ClientData(
                    i, rng.random((40, 8, 8, 1)), rng.integers(0, N_CLASSES, 40), N_CLASSES
                ),
                batch_size=16,
            )
            for i in range(3)
        ]
        trainer = make_trainer(clients, winner_ids=[0, 1])
        trainer.run_round(1)
        assert all(r is trainer.rng for r in seen)


class TestScratchReplicas:
    def test_replica_pool_grows_to_winner_count(self):
        trainer = make_trainer(
            make_clients(4), winner_ids=[0, 1, 2, 3], local_executor=ThreadExecutor(max_workers=4)
        )
        assert len(trainer._scratch_pool) == 1
        trainer.run_round(1)
        assert len(trainer._scratch_pool) == 4

    def test_legacy_mode_keeps_single_replica(self):
        trainer = make_trainer(make_clients(4), winner_ids=[0, 1, 2, 3])
        trainer.run_round(1)
        assert len(trainer._scratch_pool) == 1
