"""Unit tests for psi-FMore selection and the fill-probability formulas."""

import numpy as np
import pytest

from repro.core.psi import (
    PsiSelection,
    TopKSelection,
    negative_binomial_fill_probability,
    paper_fill_probability,
)


class TestTopKSelection:
    def test_selects_first_k(self, rng):
        assert TopKSelection().select(10, 3, rng) == [0, 1, 2]

    def test_fewer_bids_than_k(self, rng):
        assert TopKSelection().select(2, 5, rng) == [0, 1]


class TestPsiSelection:
    def test_psi_one_equals_top_k(self, rng):
        # "FMore is a special case of psi-FMore with psi = 1" (Section III-C).
        sel = PsiSelection(1.0)
        assert sel.select(10, 4, rng) == [0, 1, 2, 3]

    def test_always_returns_k_winners(self):
        sel = PsiSelection(0.2)
        for seed in range(50):
            rng = np.random.default_rng(seed)
            chosen = sel.select(12, 5, rng)
            assert len(chosen) == 5
            assert len(set(chosen)) == 5

    def test_small_population_takes_everyone(self, rng):
        sel = PsiSelection(0.3)
        assert sorted(sel.select(3, 5, rng)) == [0, 1, 2]

    def test_low_psi_spreads_selection(self):
        # With psi=0.2 low-rank nodes win noticeably often; with psi=1 never.
        low_rank_wins = 0
        for seed in range(300):
            rng = np.random.default_rng(seed)
            chosen = PsiSelection(0.2).select(30, 5, rng)
            low_rank_wins += sum(1 for pos in chosen if pos >= 15)
        assert low_rank_wins > 50

    def test_high_psi_favours_top(self):
        top_wins = 0
        for seed in range(300):
            rng = np.random.default_rng(seed)
            chosen = PsiSelection(0.9).select(30, 5, rng)
            top_wins += sum(1 for pos in chosen if pos < 10)
        assert top_wins / (300 * 5) > 0.9

    def test_rejects_bad_psi(self):
        with pytest.raises(ValueError):
            PsiSelection(0.0)
        with pytest.raises(ValueError):
            PsiSelection(1.2)


class TestFillProbability:
    def test_negative_binomial_matches_monte_carlo(self):
        psi, n, k = 0.5, 12, 4
        rng = np.random.default_rng(7)
        hits = 0
        trials = 20000
        for _ in range(trials):
            accepted = np.cumsum(rng.random(n) < psi)
            hits += accepted[-1] >= k
        mc = hits / trials
        assert negative_binomial_fill_probability(psi, n, k) == pytest.approx(mc, abs=0.02)

    def test_psi_one_fills_certainly(self):
        assert negative_binomial_fill_probability(1.0, 10, 4) == pytest.approx(1.0)
        assert paper_fill_probability(1.0, 10, 4) == pytest.approx(1.0)

    def test_monotone_in_psi(self):
        values = [
            negative_binomial_fill_probability(psi, 20, 5)
            for psi in (0.2, 0.4, 0.6, 0.8, 1.0)
        ]
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_paper_formula_upper_bounds_exact(self):
        # C(i+K, i) >= C(i+K-1, i), so the paper's sum dominates the exact one.
        for psi in (0.3, 0.6, 0.9):
            assert paper_fill_probability(psi, 15, 4) >= negative_binomial_fill_probability(
                psi, 15, 4
            ) - 1e-12

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            paper_fill_probability(0.0, 10, 2)
        with pytest.raises(ValueError):
            negative_binomial_fill_probability(0.5, 3, 5)
