"""The full theorem-verification battery must pass (paper Section IV)."""

import pytest

from repro.analysis import report, verify_all


@pytest.fixture(scope="module")
def checks():
    return verify_all(seed=0)


def test_all_theorems_verified(checks):
    failed = [c for c in checks if not c.passed]
    assert not failed, "\n" + report(checks)


def test_expected_number_of_checks(checks):
    # Che Thm 1/2, Prop 1, Thm 1 backends, Thm 2, Thm 3, Prop 2, Prop 3,
    # Prop 4, Thm 4, Thm 5, IR — twelve results.
    assert len(checks) == 12


def test_report_renders(checks):
    text = report(checks)
    assert "PASS" in text
    assert "Thm 5" in text
