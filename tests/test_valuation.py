"""Unit tests for the private-value model (theta distributions)."""

import numpy as np
import pytest

from repro.core.valuation import (
    PrivateValueModel,
    ScaledBetaTheta,
    TruncatedNormalTheta,
    UniformTheta,
)

ALL_FAMILIES = [
    UniformTheta(0.1, 1.0),
    TruncatedNormalTheta(0.1, 1.0),
    ScaledBetaTheta(0.1, 1.0, a=2.0, b=5.0),
]


@pytest.mark.parametrize("dist", ALL_FAMILIES, ids=["uniform", "truncnorm", "beta"])
class TestDistributionContract:
    def test_cdf_boundaries(self, dist):
        assert dist.cdf(dist.lo) == pytest.approx(0.0, abs=1e-9)
        assert dist.cdf(dist.hi) == pytest.approx(1.0, abs=1e-9)

    def test_cdf_monotone(self, dist):
        xs = np.linspace(dist.lo, dist.hi, 50)
        cdf = np.asarray(dist.cdf(xs))
        assert np.all(np.diff(cdf) >= -1e-12)

    def test_ppf_inverts_cdf(self, dist):
        for u in (0.1, 0.5, 0.9):
            x = dist.ppf(u)
            assert dist.cdf(x) == pytest.approx(u, abs=1e-6)

    def test_samples_in_support(self, dist):
        rng = np.random.default_rng(0)
        draws = np.asarray(dist.sample(rng, 500))
        assert draws.min() >= dist.lo - 1e-9
        assert draws.max() <= dist.hi + 1e-9

    def test_sample_distribution_matches_cdf(self, dist):
        rng = np.random.default_rng(1)
        draws = np.sort(np.asarray(dist.sample(rng, 4000)))
        empirical = np.arange(1, draws.size + 1) / draws.size
        theoretical = np.asarray(dist.cdf(draws))
        assert np.max(np.abs(empirical - theoretical)) < 0.05  # KS-style bound

    def test_pdf_zero_outside_support(self, dist):
        assert dist.pdf(dist.lo - 0.05) == pytest.approx(0.0, abs=1e-9)
        assert dist.pdf(dist.hi + 0.05) == pytest.approx(0.0, abs=1e-9)


class TestSupportValidation:
    def test_rejects_nonpositive_lo(self):
        with pytest.raises(ValueError):
            UniformTheta(0.0, 1.0)

    def test_rejects_inverted_support(self):
        with pytest.raises(ValueError):
            UniformTheta(1.0, 0.5)


class TestPrivateValueModel:
    def test_sample_types_shape(self):
        model = PrivateValueModel(UniformTheta(0.1, 1.0), n_nodes=20, k_winners=5)
        rng = np.random.default_rng(3)
        types = model.sample_types(rng)
        assert types.shape == (20,)

    def test_rejects_k_larger_than_n(self):
        with pytest.raises(ValueError):
            PrivateValueModel(UniformTheta(0.1, 1.0), n_nodes=5, k_winners=6)

    def test_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            PrivateValueModel(UniformTheta(0.1, 1.0), n_nodes=0, k_winners=0)
