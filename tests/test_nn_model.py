"""Tests for the Sequential container and its FedAvg weight interface."""

import numpy as np
import pytest

from repro.fl.nn import (
    SGD,
    Dense,
    Flatten,
    ReLU,
    Sequential,
)


def blob_data(rng, n_per_class=100, dim=4):
    x = np.concatenate(
        [rng.normal(-1.0, 0.6, (n_per_class, dim)), rng.normal(1.0, 0.6, (n_per_class, dim))]
    )
    y = np.concatenate([np.zeros(n_per_class, int), np.ones(n_per_class, int)])
    return x, y


def mlp_factory():
    return [Dense(16), ReLU(), Dense(2)]


class TestConstruction:
    def test_output_shape_inferred(self, rng):
        model = Sequential(mlp_factory, (4,), rng=rng)
        assert model.output_shape == (2,)

    def test_parameter_count(self, rng):
        model = Sequential(mlp_factory, (4,), rng=rng)
        assert model.n_parameters == (4 * 16 + 16) + (16 * 2 + 2)

    def test_parameter_bytes(self, rng):
        model = Sequential(mlp_factory, (4,), rng=rng)
        assert model.parameter_bytes == model.n_parameters * 8


class TestTraining:
    def test_learns_separable_blobs(self, rng):
        model = Sequential(mlp_factory, (4,), optimizer=SGD(0.1), rng=rng)
        x, y = blob_data(rng)
        for _ in range(6):
            model.fit(x, y, epochs=1, batch_size=32)
        _, acc = model.evaluate(x, y)
        assert acc > 0.95

    def test_train_batch_reduces_loss(self, rng):
        model = Sequential(mlp_factory, (4,), optimizer=SGD(0.1), rng=rng)
        x, y = blob_data(rng, n_per_class=64)
        first = model.train_batch(x, y)
        for _ in range(20):
            last = model.train_batch(x, y)
        assert last < first

    def test_predict_matches_argmax(self, rng):
        model = Sequential(mlp_factory, (4,), rng=rng)
        x, _ = blob_data(rng, n_per_class=10)
        logits = model.predict_logits(x)
        np.testing.assert_array_equal(model.predict(x), logits.argmax(axis=1))

    def test_evaluate_returns_loss_and_accuracy(self, rng):
        model = Sequential(mlp_factory, (4,), rng=rng)
        x, y = blob_data(rng, n_per_class=16)
        loss, acc = model.evaluate(x, y)
        assert loss > 0.0
        assert 0.0 <= acc <= 1.0


class TestWeightInterface:
    def test_get_weights_returns_copies(self, rng):
        model = Sequential(mlp_factory, (4,), rng=rng)
        weights = model.get_weights()
        weights[0][...] = 0.0
        assert not np.allclose(model.layers[0].params[0], 0.0)

    def test_set_get_roundtrip(self, rng):
        model = Sequential(mlp_factory, (4,), rng=rng)
        weights = model.get_weights()
        model2 = Sequential(mlp_factory, (4,), rng=np.random.default_rng(99))
        model2.set_weights(weights)
        for a, b in zip(model2.get_weights(), weights):
            np.testing.assert_array_equal(a, b)

    def test_set_weights_rejects_wrong_count(self, rng):
        model = Sequential(mlp_factory, (4,), rng=rng)
        with pytest.raises(ValueError):
            model.set_weights(model.get_weights()[:-1])

    def test_set_weights_rejects_wrong_shape(self, rng):
        model = Sequential(mlp_factory, (4,), rng=rng)
        weights = model.get_weights()
        weights[0] = np.zeros((3, 3))
        with pytest.raises(ValueError):
            model.set_weights(weights)

    def test_identical_weights_identical_predictions(self, rng):
        model = Sequential(mlp_factory, (4,), rng=rng)
        clone = model.clone_architecture(np.random.default_rng(1))
        clone.set_weights(model.get_weights())
        x, _ = blob_data(rng, n_per_class=8)
        np.testing.assert_allclose(model.predict_logits(x), clone.predict_logits(x))


class TestClone:
    def test_clone_has_fresh_parameters(self, rng):
        model = Sequential(mlp_factory, (4,), rng=rng)
        clone = model.clone_architecture(np.random.default_rng(123))
        assert clone.n_parameters == model.n_parameters
        # Different init rng -> different weights, and no aliasing.
        assert not np.allclose(clone.get_weights()[0], model.get_weights()[0])
        clone.layers[0].params[0][...] = 7.0
        assert not np.allclose(model.layers[0].params[0], 7.0)

    def test_clone_optimizer_state_fresh(self, rng):
        model = Sequential(mlp_factory, (4,), optimizer=SGD(0.1, momentum=0.9), rng=rng)
        x, y = blob_data(rng, n_per_class=8)
        model.train_batch(x, y)
        clone = model.clone_architecture(np.random.default_rng(5))
        assert isinstance(clone.optimizer, SGD)
        assert clone.optimizer.momentum == 0.9
        assert clone.optimizer._velocity is None
