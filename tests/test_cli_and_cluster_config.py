"""Tests for the CLI entry point and the cluster experiment config."""

import numpy as np
import pytest

from repro.__main__ import main
from repro.sim.cluster_experiment import (
    ClusterConfig,
    build_cluster_environment,
    run_cluster_comparison,
)


class TestClusterConfig:
    def test_defaults_match_paper_setup(self):
        cfg = ClusterConfig()
        assert cfg.n_nodes == 31          # 32 machines minus the aggregator
        assert cfg.score_weights == (0.4, 0.3, 0.3)
        assert cfg.dataset == "cifar10"

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_nodes=5, k_winners=6)
        with pytest.raises(ValueError):
            ClusterConfig(size_range=(0, 10))


class TestClusterEnvironment:
    @pytest.fixture(scope="class")
    def env(self):
        cfg = ClusterConfig(
            n_nodes=6, k_winners=2, n_rounds=2, size_range=(30, 80),
            test_per_class=4, model_width=0.12,
        )
        return cfg, build_cluster_environment(cfg, seed=0)

    def test_one_agent_per_client(self, env):
        cfg, e = env
        assert len(e.agents) == cfg.n_nodes
        assert len(e.clients_data) == cfg.n_nodes
        agent_ids = {a.node_id for a in e.agents}
        client_ids = {c.client_id for c in e.clients_data}
        assert agent_ids == client_ids

    def test_cluster_profiles_match_client_data(self, env):
        _, e = env
        for c in e.clients_data:
            assert e.cluster.specs[c.client_id].profile.data_size == c.size

    def test_quality_extractor_in_unit_box(self, env):
        _, e = env
        rng = np.random.default_rng(0)
        for agent in e.agents:
            q = agent.quality_extractor(agent.profile)
            assert np.all(q >= 0.0) and np.all(q <= 1.0)

    def test_unknown_scheme_rejected(self):
        cfg = ClusterConfig(
            n_nodes=4, k_winners=2, n_rounds=1, size_range=(20, 40),
            test_per_class=2, model_width=0.12,
        )
        with pytest.raises(ValueError):
            run_cluster_comparison(cfg, ("Oracle",), seed=0)

    def test_fixfl_scheme_supported(self):
        cfg = ClusterConfig(
            n_nodes=4, k_winners=2, n_rounds=1, size_range=(20, 40),
            test_per_class=2, model_width=0.12,
        )
        results = run_cluster_comparison(cfg, ("FixFL",), seed=0)
        assert len(results["FixFL"].records) == 1


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "compare" in out

    def test_sweep_k(self, capsys):
        assert main(["sweep-k", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "payment" in out and "score" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["dance"])
