"""Tests for the CLI entry point and the cluster experiment config."""

import numpy as np
import pytest

from repro.__main__ import main
from repro.api import FMoreEngine, Scenario
from repro.sim.cluster_experiment import (
    ClusterConfig,
    build_cluster_environment,
    run_cluster_comparison,
)


class TestClusterConfig:
    def test_defaults_match_paper_setup(self):
        cfg = ClusterConfig()
        assert cfg.n_nodes == 31          # 32 machines minus the aggregator
        assert cfg.score_weights == (0.4, 0.3, 0.3)
        assert cfg.dataset == "cifar10"

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterConfig(n_nodes=5, k_winners=6)
        with pytest.raises(ValueError):
            ClusterConfig(size_range=(0, 10))


class TestClusterEnvironment:
    @pytest.fixture(scope="class")
    def env(self):
        cfg = ClusterConfig(
            n_nodes=6, k_winners=2, n_rounds=2, size_range=(30, 80),
            test_per_class=4, model_width=0.12,
        )
        return cfg, build_cluster_environment(cfg, seed=0)

    def test_one_agent_per_client(self, env):
        cfg, e = env
        assert len(e.agents) == cfg.n_nodes
        assert len(e.clients_data) == cfg.n_nodes
        agent_ids = {a.node_id for a in e.agents}
        client_ids = {c.client_id for c in e.clients_data}
        assert agent_ids == client_ids

    def test_cluster_profiles_match_client_data(self, env):
        _, e = env
        for c in e.clients_data:
            assert e.cluster.specs[c.client_id].profile.data_size == c.size

    def test_quality_extractor_in_unit_box(self, env):
        _, e = env
        rng = np.random.default_rng(0)
        for agent in e.agents:
            q = agent.quality_extractor(agent.profile)
            assert np.all(q >= 0.0) and np.all(q <= 1.0)

    def test_unknown_scheme_rejected(self):
        cfg = ClusterConfig(
            n_nodes=4, k_winners=2, n_rounds=1, size_range=(20, 40),
            test_per_class=2, model_width=0.12,
        )
        with pytest.raises(ValueError):
            run_cluster_comparison(cfg, ("Oracle",), seed=0)

    def test_fixfl_scheme_supported(self):
        cfg = ClusterConfig(
            n_nodes=4, k_winners=2, n_rounds=1, size_range=(20, 40),
            test_per_class=2, model_width=0.12,
        )
        results = run_cluster_comparison(cfg, ("FixFL",), seed=0)
        assert len(results["FixFL"].records) == 1


class TestClusterScenario:
    """The Section V-C testbed as a variant="cluster" Scenario."""

    CFG_KWARGS = dict(
        n_nodes=6, k_winners=2, n_rounds=2, size_range=(30, 80),
        test_per_class=4, model_width=0.12, grid_size=65,
    )

    def test_from_preset_cluster(self):
        scenario = Scenario.from_preset("cluster_cifar10")
        assert scenario.variant == "cluster"
        assert scenario.dataset == "cifar10"
        assert scenario.n_clients == 31
        assert scenario.schemes == ("FMore", "RandFL")
        assert scenario.scoring == {"name": "additive", "weights": [0.4, 0.3, 0.3]}
        # The hand-built solver defaulted to quadrature; the lift keeps it.
        assert scenario.payment_method == "quadrature"
        assert Scenario.from_json(scenario.to_json()) == scenario

    def test_unknown_preset_lists_names(self):
        with pytest.raises(ValueError, match="cluster_cifar10"):
            Scenario.from_preset("warp")

    def test_cluster_scenario_rejects_legacy_config_projection(self):
        scenario = Scenario.from_preset("cluster_cifar10")
        with pytest.raises(ValueError, match="FMoreEngine"):
            scenario.to_config()

    def test_engine_matches_legacy_assembly_bitwise(self):
        """The lift's acceptance: engine-driven cluster histories equal a
        manual legacy-style loop over build_cluster_environment."""
        from repro.core.auction import MultiDimensionalProcurementAuction
        from repro.core.mechanism import FMoreMechanism
        from repro.fl.client import FLClient
        from repro.fl.models import build_model
        from repro.fl.selection import AuctionSelection, RandomSelection
        from repro.fl.server import FedAvgServer
        from repro.fl.trainer import FederatedTrainer
        from repro.sim.rng import rng_from

        seed = 1
        cfg = ClusterConfig(**self.CFG_KWARGS)
        env = build_cluster_environment(cfg, seed)
        legacy = {}
        client_ids = [c.client_id for c in env.clients_data]
        max_data = env.max_data_size
        for scheme in ("FMore", "RandFL"):
            global_model = build_model(
                cfg.dataset,
                env.generator.input_shape,
                env.generator.n_classes,
                rng_from(seed, "cluster-model"),
                width=cfg.model_width,
                lr=cfg.lr,
            )
            if env.initial_weights:
                global_model.set_weights(env.initial_weights)
            else:
                env.initial_weights = global_model.get_weights()
            clients = [
                FLClient(d, local_epochs=cfg.local_epochs, batch_size=cfg.batch_size)
                for d in env.clients_data
            ]
            if scheme == "RandFL":
                selection = RandomSelection(client_ids, cfg.k_winners)
            else:
                auction = MultiDimensionalProcurementAuction(
                    env.solver.quality_rule, cfg.k_winners
                )
                selection = AuctionSelection(
                    FMoreMechanism(auction),
                    env.agents,
                    quality_to_samples=lambda q: int(round(q[2] * max_data)),
                )
            trainer = FederatedTrainer(
                FedAvgServer(global_model),
                clients,
                selection,
                env.test_x,
                env.test_y,
                rng_from(seed, f"cluster-train-{scheme}"),
                timer=env.cluster,
            )
            legacy[scheme] = trainer.run(cfg.n_rounds)

        from repro.api import FMoreEngine, Scenario as S

        scenario = S.from_cluster_config(cfg, schemes=("FMore", "RandFL"), seeds=(seed,))
        mine = FMoreEngine().run(scenario).comparison()
        for scheme, reference in legacy.items():
            assert mine[scheme].records == reference.records
            assert mine[scheme].cumulative_seconds == reference.cumulative_seconds

    def test_run_cluster_comparison_delegates_to_engine(self):
        cfg = ClusterConfig(**self.CFG_KWARGS)
        shim = run_cluster_comparison(cfg, ("FMore", "RandFL"), seed=1)
        scenario = Scenario.from_cluster_config(cfg, schemes=("FMore", "RandFL"), seeds=(1,))
        direct = FMoreEngine().run(scenario).comparison()
        for scheme in shim:
            assert shim[scheme].records == direct[scheme].records

    def test_cluster_timer_comes_from_federation(self):
        from repro.api import build_federation

        scenario = Scenario.from_cluster_config(ClusterConfig(**self.CFG_KWARGS))
        federation = build_federation(scenario, 0)
        assert federation.cluster is not None
        assert len(federation.cluster_specs) == scenario.n_clients
        for c in federation.clients_data:
            assert federation.cluster.specs[c.client_id].profile.data_size == c.size

    def test_cluster_needs_three_scoring_dimensions(self):
        from repro.api import build_agents, build_federation, build_solver

        scenario = Scenario.from_cluster_config(
            ClusterConfig(**self.CFG_KWARGS)
        ).with_(
            scoring={"name": "additive", "weights": [0.5, 0.5]},
            cost={"name": "linear", "betas": [0.25, 0.25]},
        )
        federation = build_federation(scenario, 0)
        solver = build_solver(scenario)
        with pytest.raises(ValueError, match="3-D"):
            build_agents(scenario, federation, solver)


class TestCLI:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "compare" in out

    def test_sweep_k(self, capsys):
        assert main(["sweep-k", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "payment" in out and "score" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["dance"])
