"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.fl.datasets import (
    DATASET_NAMES,
    IMAGE_PRESETS,
    ImageSpec,
    SyntheticImageGenerator,
    SyntheticTextGenerator,
    TextSpec,
    make_generator,
)


class TestFactory:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_all_names_construct(self, name):
        gen = make_generator(name, seed=0)
        assert gen.n_classes == 10
        assert gen.name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_generator("imagenet")

    def test_image_size_override(self):
        gen = make_generator("mnist_o", image_size=28)
        assert gen.input_shape == (28, 28, 1)

    def test_cifar_has_three_channels(self):
        assert make_generator("cifar10").input_shape[-1] == 3


class TestImageGenerator:
    def test_sample_shape_and_determinism(self):
        gen = make_generator("mnist_o", seed=3)
        rng = np.random.default_rng(0)
        x = gen.sample(2, 5, rng)
        assert x.shape == (5, *gen.input_shape)
        x2 = gen.sample(2, 5, np.random.default_rng(0))
        np.testing.assert_array_equal(x, x2)

    def test_same_seed_same_prototypes(self):
        a = make_generator("mnist_o", seed=5)
        b = make_generator("mnist_o", seed=5)
        np.testing.assert_array_equal(a._prototypes, b._prototypes)

    def test_different_seed_different_prototypes(self):
        a = make_generator("mnist_o", seed=5)
        b = make_generator("mnist_o", seed=6)
        assert not np.allclose(a._prototypes, b._prototypes)

    def test_classes_are_statistically_distinct(self):
        gen = make_generator("mnist_o", seed=1)
        rng = np.random.default_rng(2)
        a = gen.sample(0, 60, rng).mean(axis=0)
        b = gen.sample(1, 60, rng).mean(axis=0)
        # Mean images converge to the prototypes, which differ.
        assert np.abs(a - b).mean() > 0.1

    def test_harder_presets_have_more_noise(self):
        assert (
            IMAGE_PRESETS["mnist_o"].noise_std
            < IMAGE_PRESETS["mnist_f"].noise_std
        )
        assert IMAGE_PRESETS["mnist_f"].prototype_blend < IMAGE_PRESETS["cifar10"].prototype_blend

    def test_sample_mixed_counts_and_shuffle(self):
        gen = make_generator("mnist_f", seed=0)
        rng = np.random.default_rng(1)
        x, y = gen.sample_mixed({0: 10, 3: 5}, rng)
        assert x.shape[0] == 15
        assert np.sum(y == 0) == 10 and np.sum(y == 3) == 5
        # Shuffled: labels are not sorted runs.
        assert not (np.all(y[:10] == 0) and np.all(y[10:] == 3))

    def test_sample_mixed_empty(self):
        gen = make_generator("mnist_o", seed=0)
        x, y = gen.sample_mixed({}, np.random.default_rng(0))
        assert x.shape[0] == 0 and y.shape[0] == 0

    def test_rejects_bad_class(self):
        gen = make_generator("mnist_o", seed=0)
        with pytest.raises(ValueError):
            gen.sample(10, 1, np.random.default_rng(0))
        with pytest.raises(ValueError):
            gen.sample(-1, 1, np.random.default_rng(0))

    def test_test_set_balanced(self):
        gen = make_generator("mnist_o", seed=0)
        x, y = gen.test_set(7, np.random.default_rng(0))
        counts = np.bincount(y, minlength=10)
        np.testing.assert_array_equal(counts, np.full(10, 7))


class TestTextGenerator:
    def test_tokens_in_vocabulary(self):
        gen = make_generator("hpnews", seed=0)
        rng = np.random.default_rng(0)
        x = gen.sample(3, 50, rng)
        assert x.dtype == np.int64
        assert x.min() >= 0
        assert x.max() < gen.spec.vocab_size

    def test_sequence_shape(self):
        gen = make_generator("hpnews", seed=0)
        x = gen.sample(0, 4, np.random.default_rng(1))
        assert x.shape == (4, gen.spec.seq_len)

    def test_class_topics_are_distinct(self):
        gen = make_generator("hpnews", seed=0)
        rng = np.random.default_rng(2)
        a = np.bincount(gen.sample(0, 300, rng).ravel(), minlength=gen.spec.vocab_size)
        b = np.bincount(gen.sample(1, 300, rng).ravel(), minlength=gen.spec.vocab_size)
        # Total-variation distance between class unigram counts is large.
        a = a / a.sum()
        b = b / b.sum()
        assert 0.5 * np.abs(a - b).sum() > 0.3

    def test_rejects_vocab_too_small(self):
        with pytest.raises(ValueError):
            SyntheticTextGenerator(
                TextSpec(name="x", vocab_size=100, topic_words=40, n_classes=10)
            )

    def test_distributions_normalised(self):
        gen = make_generator("hpnews", seed=0)
        np.testing.assert_allclose(gen._distributions.sum(axis=1), np.ones(10))


class TestDifficultyKnobs:
    def test_blend_increases_class_overlap(self):
        rng = np.random.default_rng(0)
        base = dict(name="x", noise_std=0.0, max_shift=0)
        sep = SyntheticImageGenerator(ImageSpec(**base, prototype_blend=0.0), seed=1)
        blended = SyntheticImageGenerator(ImageSpec(**base, prototype_blend=0.9), seed=1)

        def class_gap(gen):
            a = gen.sample(0, 1, rng)[0]
            b = gen.sample(1, 1, rng)[0]
            return np.abs(a - b).mean()

        assert class_gap(blended) < class_gap(sep)

    def test_modes_create_intra_class_variation(self):
        rng = np.random.default_rng(0)
        spec = ImageSpec(name="x", noise_std=0.0, max_shift=0, modes=2)
        gen = SyntheticImageGenerator(spec, seed=1)
        samples = gen.sample(0, 40, rng)
        # With two noiseless modes there are exactly two distinct images.
        unique = np.unique(samples.round(9).reshape(40, -1), axis=0)
        assert unique.shape[0] == 2
