"""The round-policy pipeline: registry, stage hooks, Scenario addressing.

Covers the redesign's acceptance criteria: a psi rank-schedule, a
guidance, a blacklist and a churn scenario are each expressible purely as
Scenario JSON (round-trip included) and runnable from the CLI with no
Python assembly; the default (policy-free) pipeline leaves histories
bitwise-identical; policy trajectories are pure functions of the policy
seed stream.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.api import FMoreEngine, Scenario
from repro.core import (
    AdditiveScore,
    AuditBlacklistPolicy,
    ChurnPolicy,
    FMoreMechanism,
    GuidancePolicy,
    LinearCost,
    MultiDimensionalProcurementAuction,
    PIPELINE_STAGES,
    PerNodePsiSelection,
    PrivateValueModel,
    ROUND_POLICIES,
    RoundPolicy,
    SelectionPolicy,
    UniformTheta,
    build_policy_pipeline,
)
from repro.core.equilibrium import EquilibriumSolver
from repro.mec.node import EdgeNode
from repro.mec.resources import ResourceProfile, StaticDynamics


# ----------------------------------------------------------------------
# A tiny auction environment shared by the mechanism-level tests
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def env():
    rule = AdditiveScore([0.5, 0.5])
    cost = LinearCost([1.0, 1.0])
    model = PrivateValueModel(UniformTheta(0.1, 1.0), 12, 4)
    solver = EquilibriumSolver(
        rule, cost, model, [[0.0, 5.0], [0.0, 1.0]], grid_size=33
    )
    def extractor(profile):
        return np.asarray(
            [profile.data_size / 1000.0, profile.category_proportion], dtype=float
        )
    agents = [
        EdgeNode(
            i,
            0.2 + 0.05 * i,
            solver,
            ResourceProfile(1000 + 100 * i, 0.5 + 0.03 * i),
            StaticDynamics(),
            quality_extractor=extractor,
        )
        for i in range(12)
    ]
    return rule, agents


def _mechanism(env, specs, policy_seed=7):
    rule, agents = env
    auction = MultiDimensionalProcurementAuction(rule, 4)
    return (
        FMoreMechanism(
            auction,
            policies=build_policy_pipeline(specs),
            policy_rng=np.random.default_rng(policy_seed),
        ),
        agents,
    )


class TestRegistryAndPipeline:
    def test_all_stages_registered(self):
        assert set(ROUND_POLICIES.names()) == set(PIPELINE_STAGES)

    def test_pipeline_is_stage_ordered(self):
        specs = {
            "selection": {"name": "top_k"},
            "churn": {"departure_prob": 0.1},
            "audit_blacklist": {"defectors": [1]},
            "guidance": {"target_mix": [1.0, 1.0]},
        }
        pipeline = build_policy_pipeline(specs)
        assert [type(p) for p in pipeline] == [
            ChurnPolicy,
            AuditBlacklistPolicy,
            GuidancePolicy,
            SelectionPolicy,
        ]

    def test_none_disables_a_stage(self):
        pipeline = build_policy_pipeline({"selection": None, "churn": {}})
        assert [type(p) for p in pipeline] == [ChurnPolicy]

    def test_unknown_stage_rejected(self):
        with pytest.raises(ValueError, match="unknown round-policy stages"):
            build_policy_pipeline({"bribery": {}})

    def test_bad_params_fail_with_stage_name(self):
        with pytest.raises(TypeError, match="round policy 'churn'"):
            build_policy_pipeline({"churn": {"volatility": 2}})

    def test_base_policy_hooks_are_noops(self):
        policy = RoundPolicy()
        assert policy.filter_agents(["a"], None) == ["a"]
        assert policy.select_winners(None) is None


class TestSelectionPolicy:
    def test_rank_schedule_spec_builds_per_node_psi(self):
        policy = SelectionPolicy(
            name="per_node_psi", schedule="geometric", psi0=0.9, decay=0.5
        )
        rule = policy.select_winners(None)
        assert isinstance(rule, PerNodePsiSelection)
        assert rule.probability(0) == pytest.approx(0.9)
        assert rule.probability(1) == pytest.approx(0.45)

    def test_overrides_the_auction_default(self, env):
        mech, agents = _mechanism(env, {"selection": {"name": "psi", "psi": 0.3}})
        rng = np.random.default_rng(0)

        def deviates(record):
            top_k = {sb.node_id for sb in record.outcome.scored_bids[:4]}
            return set(record.outcome.winner_ids) != top_k

        records = [mech.run_round(agents, t, rng) for t in range(1, 12)]
        assert all(len(r.outcome.winners) == 4 for r in records)
        # psi=0.3 must deviate from plain top-K in some round.
        assert any(deviates(r) for r in records)


class TestChurnPolicy:
    def test_trajectory_is_policy_seed_deterministic(self, env):
        def actions(policy_seed):
            mech, agents = _mechanism(
                env, {"churn": {"departure_prob": 0.2}}, policy_seed
            )
            rng = np.random.default_rng(0)
            return [mech.run_round(agents, t, rng).actions for t in range(1, 6)]

        assert actions(3) == actions(3)
        assert actions(3) != actions(4)

    def test_population_shrinks_and_recovers(self, env):
        mech, agents = _mechanism(
            env, {"churn": {"departure_prob": 0.5, "arrival_prob": 1.0}}
        )
        rng = np.random.default_rng(0)
        asked = [mech.run_round(agents, t, rng).accounting.n_asked for t in range(1, 8)]
        assert min(asked) < len(agents)  # someone departed
        churn = mech.policies[0]
        assert churn.active_ids <= {a.node_id for a in agents}

    def test_min_active_floor_holds(self, env):
        mech, agents = _mechanism(
            env,
            {"churn": {"departure_prob": 1.0, "arrival_prob": 0.0, "min_active": 2}},
        )
        rng = np.random.default_rng(0)
        for t in range(1, 5):
            record = mech.run_round(agents, t, rng)
        assert record.accounting.n_asked == 2
        # Regression: once the floor holds, blocked departure draws are
        # not membership changes — no empty churn actions are filed.
        assert record.actions == []

    def test_validation(self):
        with pytest.raises(ValueError, match="departure_prob"):
            ChurnPolicy(departure_prob=1.5)
        with pytest.raises(ValueError, match="min_active"):
            ChurnPolicy(min_active=0)


class TestAuditBlacklistPolicy:
    def test_defectors_get_banned_and_filtered(self, env):
        mech, agents = _mechanism(
            env,
            {
                "audit_blacklist": {
                    "defectors": [0, 1],
                    "shortfall": 0.5,
                    "strikes_to_ban": 2,
                    "tolerance": 0.05,
                }
            },
        )
        rng = np.random.default_rng(0)
        records = [mech.run_round(agents, t, rng) for t in range(1, 6)]
        policy = mech.policies[0]
        assert policy.blacklist.banned == frozenset({0, 1})
        kinds = [a.kind for r in records for a in r.actions]
        assert kinds.count("ban") == 2
        assert kinds.count("violation") >= 4
        # Once banned, the nodes stop being asked and stop winning.
        assert records[-1].accounting.n_asked == len(agents) - 2
        assert not {0, 1} & set(records[-1].outcome.winner_ids)

    def test_defector_draw_uses_full_population_despite_churn(self, env):
        # Regression: the seeded defect_fraction subset is a property of
        # the nodes, so it must be drawn from all 12 agents even when the
        # churn stage (which runs first) already removed some in round 1.
        mech, agents = _mechanism(
            env,
            {
                "churn": {"departure_prob": 0.9, "arrival_prob": 0.0, "min_active": 2},
                "audit_blacklist": {"defect_fraction": 0.25, "shortfall": 0.9},
            },
        )
        record = mech.run_round(agents, 1, np.random.default_rng(0))
        assert record.accounting.n_asked < len(agents)  # churn did bite
        assert len(mech.policies[1].defectors) == 3      # 25% of 12, not of the rest

    def test_duck_typed_auctions_still_accepted_without_selection_policy(self, env):
        # Regression: policy-free (and selection-free) pipelines must not
        # pass selection= to auctions that predate the pipeline, e.g.
        # BudgetedAuction.
        from repro.core import BudgetedAuction

        rule, agents = env
        base = MultiDimensionalProcurementAuction(rule, 4)
        mech = FMoreMechanism(BudgetedAuction(base, budget=500.0))
        record = mech.run_round(agents, 1, np.random.default_rng(0))
        assert record.outcome.winners
        churny = FMoreMechanism(
            BudgetedAuction(base, budget=500.0),
            policies=build_policy_pipeline({"churn": {"departure_prob": 0.3}}),
            policy_rng=np.random.default_rng(1),
        )
        assert churny.run_round(agents, 1, np.random.default_rng(0)).outcome.winners

    def test_seeded_defect_fraction_draw(self, env):
        mech, agents = _mechanism(
            env, {"audit_blacklist": {"defect_fraction": 0.25, "shortfall": 0.9}}
        )
        rng = np.random.default_rng(0)
        record = mech.run_round(agents, 1, rng)
        policy = mech.policies[0]
        assert len(policy.defectors) == 3  # 25% of 12
        drawn = [a for a in record.actions if a.kind == "defectors_drawn"]
        assert drawn and drawn[0].payload["node_ids"] == sorted(policy.defectors)

    def test_validation(self):
        with pytest.raises(ValueError, match="shortfall"):
            AuditBlacklistPolicy(shortfall=0.0)
        with pytest.raises(ValueError, match="not both"):
            AuditBlacklistPolicy(defectors=[1], defect_fraction=0.5)
        with pytest.raises(ValueError, match="defect_fraction"):
            AuditBlacklistPolicy(defect_fraction=1.5)


class TestGuidancePolicy:
    def test_alpha_updates_fire_on_schedule(self, env):
        mech, agents = _mechanism(
            env, {"guidance": {"target_mix": [2.0, 1.0], "every": 2}}
        )
        rng = np.random.default_rng(0)
        records = [mech.run_round(agents, t, rng) for t in range(1, 7)]
        updates = [a for r in records for a in r.actions if a.kind == "alpha_update"]
        assert [u.round_index for u in updates] == [2, 4, 6]
        for u in updates:
            assert u.payload["applied"] is True
            assert sum(u.payload["alphas"]) == pytest.approx(1.0)
            assert len(u.payload["observed_mix"]) == 2

    def test_never_mutates_the_shared_solver_rule(self, env):
        rule, _ = env
        before = rule.weights.copy()
        mech, agents = _mechanism(
            env, {"guidance": {"target_mix": [5.0, 1.0], "every": 1, "gain": 1.0}}
        )
        rng = np.random.default_rng(0)
        for t in range(1, 4):
            mech.run_round(agents, t, rng)
        np.testing.assert_array_equal(rule.weights, before)
        # ... while the mechanism's own (privatised) rule did move.
        assert not np.allclose(mech.auction.scoring.quality_rule.weights, before)

    def test_dimension_mismatch_raises_at_bind(self, env):
        mech, agents = _mechanism(
            env, {"guidance": {"target_mix": [1.0, 1.0, 1.0]}}
        )
        with pytest.raises(ValueError, match="dimensions"):
            mech.run_round(agents, 1, np.random.default_rng(0))

    def test_validation(self):
        with pytest.raises(ValueError, match="every"):
            GuidancePolicy([1.0, 1.0], every=0)
        with pytest.raises(ValueError, match="positive"):
            GuidancePolicy([1.0, -1.0])
        with pytest.raises(ValueError, match="gain"):
            GuidancePolicy([1.0, 1.0], gain=2.0)


# ----------------------------------------------------------------------
# Scenario addressing: JSON in, runnable experiment out
# ----------------------------------------------------------------------
def _smoke(policies, **overrides):
    return Scenario.from_preset(
        "smoke", "mnist_o", schemes=("FMore",), seeds=(0,), n_rounds=2, grid_size=33
    ).with_(policies=policies, **overrides)


#: The four scenario families of the acceptance criteria, as pure JSON.
POLICY_SCENARIOS = {
    "psi_rank_schedule": {
        "selection": {
            "name": "per_node_psi",
            "schedule": "geometric",
            "psi0": 0.9,
            "decay": 0.9,
        }
    },
    "guidance": {"guidance": {"target_mix": [2.0, 1.0], "every": 1}},
    "blacklist": {
        "audit_blacklist": {"defect_fraction": 0.3, "shortfall": 0.6, "strikes_to_ban": 1}
    },
    "churn": {"churn": {"departure_prob": 0.3, "arrival_prob": 0.5}},
}

#: Scenario-field companions per family: guidance needs a scoring rule it
#: can actually steer (validated at construction).
SCENARIO_OVERRIDES = {
    "guidance": {
        "scoring": {"name": "cobb_douglas", "weights": [0.5, 0.5], "scale": 25.0}
    },
}


class TestScenarioPolicies:
    @pytest.mark.parametrize("name", sorted(POLICY_SCENARIOS))
    def test_json_round_trip(self, name):
        scenario = _smoke(POLICY_SCENARIOS[name], **SCENARIO_OVERRIDES.get(name, {}))
        again = Scenario.from_json(scenario.to_json())
        assert again == scenario
        assert json.loads(scenario.to_json())["policies"] == scenario.policies

    @pytest.mark.parametrize("name", sorted(POLICY_SCENARIOS))
    def test_runnable_from_pure_json(self, name):
        scenario = _smoke(POLICY_SCENARIOS[name], **SCENARIO_OVERRIDES.get(name, {}))
        history = FMoreEngine().run(scenario).history("FMore")
        assert len(history.records) == scenario.n_rounds
        if name != "psi_rank_schedule":  # the schedule files no actions
            assert any(r.policy_actions for r in history.records)

    def test_default_policies_leave_histories_bitwise_identical(self):
        base = _smoke({})
        engine = FMoreEngine()
        assert engine.run(base).history("FMore") == engine.run(
            base.with_(policies={})
        ).history("FMore")

    def test_per_scheme_overrides_split_one_run(self):
        scenario = Scenario.from_preset(
            "smoke",
            "mnist_o",
            schemes=("FMore", "PsiFMore"),
            seeds=(0,),
            n_rounds=2,
            grid_size=33,
        ).with_(
            policies={
                "churn": {"departure_prob": 0.4},
                "per_scheme": {
                    "PsiFMore": {
                        "selection": {"name": "psi", "psi": 0.5},
                        "churn": None,
                    }
                },
            }
        )
        result = FMoreEngine().run(scenario)
        fmore = result.history("FMore")
        psif = result.history("PsiFMore")
        assert any(
            a.kind == "churn" for r in fmore.records for a in r.policy_actions
        )
        # churn disabled for PsiFMore by the per-scheme null.
        assert not any(r.policy_actions for r in psif.records)

    def test_policies_do_not_touch_non_auction_schemes(self):
        scenario = Scenario.from_preset(
            "smoke", "mnist_o", schemes=("RandFL",), seeds=(0,), n_rounds=2
        )
        noisy = scenario.with_(policies=POLICY_SCENARIOS["churn"])
        engine = FMoreEngine()
        assert engine.run(scenario).history("RandFL") == engine.run(noisy).history(
            "RandFL"
        )

    def test_validation_fails_fast(self):
        with pytest.raises(ValueError, match="unknown policies keys"):
            _smoke({"bogus": {}})
        with pytest.raises(ValueError, match="unknown scheme"):
            _smoke({"per_scheme": {"NopeFL": {}}})
        with pytest.raises(ValueError, match="psi0"):
            _smoke({"selection": {"name": "per_node_psi", "schedule": "geometric", "psi0": 2.0}})
        with pytest.raises(TypeError, match="parameter mapping"):
            _smoke({"churn": "often"})

    def test_guidance_against_unsteerable_scoring_fails_fast(self):
        # The smoke preset scores multiplicatively (weights ignored), so a
        # default guidance stage would be a silent no-op — reject it at
        # Scenario construction, pointing at the fix.
        with pytest.raises(ValueError, match="cannot steer"):
            _smoke({"guidance": {"target_mix": [2.0, 1.0]}})
        # Record-only mode is explicitly allowed on any rule...
        recorded = _smoke({"guidance": {"target_mix": [2.0, 1.0], "apply": False}})
        assert recorded.policies["guidance"]["apply"] is False
        # ...every weight-interpreting rule is steerable...
        for scoring in (
            {"name": "additive", "weights": [0.5, 0.5]},
            {"name": "cobb_douglas", "weights": [0.5, 0.5], "scale": 25.0},
            {"name": "perfect_complementary", "weights": [0.5, 0.5]},
        ):
            _smoke({"guidance": {"target_mix": [2.0, 1.0]}}, scoring=scoring)
        # ...but the dimensionality must always line up.
        with pytest.raises(ValueError, match="dimensions"):
            _smoke(
                {"guidance": {"target_mix": [1.0, 1.0, 1.0], "apply": False}}
            )

    def test_policies_survive_config_cli_paths(self):
        # `scenario` emission -> file -> `run` is the CLI loop; the JSON
        # string is the whole interface.
        scenario = _smoke(POLICY_SCENARIOS["churn"])
        text = scenario.to_json()
        assert Scenario.from_json(text).policies_for("FMore") == {
            "churn": {"departure_prob": 0.3, "arrival_prob": 0.5}
        }


class TestCLIPolicies:
    def test_run_with_policy_flag(self, capsys):
        from repro.__main__ import main

        rc = main(
            [
                "run",
                "--preset",
                "smoke",
                "--set",
                "n_rounds=1",
                "--set",
                "schemes=FMore",
                "--set",
                "grid_size=33",
                "--policy",
                'churn={"departure_prob":0.2}',
            ]
        )
        assert rc == 0
        assert "FMore" in capsys.readouterr().out

    def test_scenario_emission_round_trips_policies(self, capsys):
        from repro.__main__ import main

        rc = main(
            [
                "scenario",
                "--preset",
                "smoke",
                "--policy",
                'selection={"name":"per_node_psi","schedule":"linear","psi0":0.8,"slope":0.05}',
                "--policy",
                'FMore.selection=null',
            ]
        )
        assert rc == 0
        data = json.loads(capsys.readouterr().out)
        assert data["policies"]["selection"]["schedule"] == "linear"
        assert data["policies"]["per_scheme"]["FMore"]["selection"] is None
        Scenario.from_dict(data)  # re-validates

    def test_bad_policy_flag_fails_loudly(self):
        from repro.__main__ import main

        with pytest.raises(SystemExit, match="STAGE=SPEC"):
            main(["scenario", "--preset", "smoke", "--policy", "churn"])
