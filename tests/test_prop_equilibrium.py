"""Property-based tests for the equilibrium strategy (Thms 1-3, 5; IR)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.costs import QuadraticCost
from repro.core.equilibrium import EquilibriumSolver, win_kernel
from repro.core.scoring import AdditiveScore
from repro.core.valuation import PrivateValueModel, UniformTheta

thetas = st.floats(min_value=0.1, max_value=1.0, allow_nan=False)


@given(theta=thetas)
@settings(max_examples=40, deadline=None)
def test_payment_covers_cost_everywhere(additive_quadratic_solver, theta):
    """IR: the equilibrium payment is never below the node's cost (Eq. 5)."""
    s = additive_quadratic_solver
    q = s.optimal_quality(theta)
    assert s.payment(theta) >= s.cost.cost(q, theta) - 1e-9


@given(theta=thetas)
@settings(max_examples=40, deadline=None)
def test_expected_profit_nonnegative(additive_quadratic_solver, theta):
    assert additive_quadratic_solver.expected_profit(theta) >= -1e-12


@given(t1=thetas, t2=thetas)
@settings(max_examples=40, deadline=None)
def test_max_score_monotone(additive_quadratic_solver, t1, t2):
    """u0(theta) decreasing: cheaper types can always offer better deals."""
    s = additive_quadratic_solver
    lo, hi = min(t1, t2), max(t1, t2)
    assert s.max_score(lo) >= s.max_score(hi) - 1e-9


@given(t1=thetas, t2=thetas)
@settings(max_examples=40, deadline=None)
def test_margin_monotone(additive_quadratic_solver, t1, t2):
    s = additive_quadratic_solver
    lo, hi = min(t1, t2), max(t1, t2)
    assert s.margin(lo) >= s.margin(hi) - 1e-9


@given(theta=thetas, shrink=st.floats(0.01, 0.99))
@settings(max_examples=40, deadline=None)
def test_incentive_compatibility_quality_understatement(
    additive_quadratic_solver, theta, shrink
):
    """Theorem 5: declaring q_hat < q* (same p) can only lower the score."""
    s = additive_quadratic_solver
    q_star, p_star = s.bid(theta)
    q_hat = q_star * shrink
    truthful = s.quality_rule.value(q_star) - p_star
    deviant = s.quality_rule.value(q_hat) - p_star
    assert deviant <= truthful + 1e-9


@given(
    h=st.floats(0.0, 1.0),
    n=st.integers(2, 40),
    k_small=st.integers(1, 10),
    extra=st.integers(1, 10),
)
@settings(max_examples=80, deadline=None)
def test_exact_win_kernel_monotone_in_k(h, n, k_small, extra):
    """More winners can only help: g_exact increasing in K."""
    k1 = min(k_small, n)
    k2 = min(k_small + extra, n)
    g1 = win_kernel(h, n, k1, "exact")
    g2 = win_kernel(h, n, k2, "exact")
    assert g2 >= g1 - 1e-12


@given(h=st.floats(0.0, 1.0), n1=st.integers(2, 20), extra=st.integers(1, 20))
@settings(max_examples=80, deadline=None)
def test_exact_win_kernel_decreasing_in_n(h, n1, extra):
    """More competitors can only hurt, at fixed K."""
    k = 1
    g1 = win_kernel(h, n1, k, "exact")
    g2 = win_kernel(h, n1 + extra, k, "exact")
    assert g2 <= g1 + 1e-12


@given(
    lo=st.floats(0.05, 0.5),
    width=st.floats(0.1, 2.0),
    n=st.integers(3, 15),
)
@settings(max_examples=10, deadline=None)
def test_worst_type_zero_margin_across_environments(lo, width, n):
    """The highest-cost type always earns zero margin, whatever F's support."""
    hi = lo + width
    rule = AdditiveScore([1.0])
    cost = QuadraticCost([1.0])
    model = PrivateValueModel(UniformTheta(lo, hi), n_nodes=n, k_winners=min(2, n))
    solver = EquilibriumSolver(rule, cost, model, [[0.0, 50.0]], grid_size=65)
    assert solver.margin(hi) == pytest.approx(0.0, abs=1e-6)
