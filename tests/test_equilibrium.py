"""Tests for the equilibrium machinery: Che Thm 1/2, paper Thm 1, Prop 1/3.

The strongest checks are the cross-validations:
* K=1 payments from the score-space machinery must equal Che's Theorem 2
  type-space closed form,
* K=2 must equal Proposition 1 (the paper's Eq. 9 kernel collapses to
  H^{N-2} there),
* the three numerical backends must agree with each other.
"""

import numpy as np
import pytest

from repro.core.costs import LinearCost, QuadraticCost
from repro.core.equilibrium import EquilibriumSolver, optimize_quality, win_kernel
from repro.core.scoring import AdditiveScore, CobbDouglasScore, MultiplicativeScore
from repro.core.valuation import PrivateValueModel, UniformTheta


class TestWinKernel:
    def test_k1_paper_equals_exact(self):
        h = np.linspace(0.0, 1.0, 11)
        np.testing.assert_allclose(
            win_kernel(h, 10, 1, "paper"), win_kernel(h, 10, 1, "exact")
        )

    def test_k1_is_h_power_n_minus_1(self):
        h = np.linspace(0.0, 1.0, 11)
        np.testing.assert_allclose(win_kernel(h, 7, 1, "paper"), h ** 6)

    def test_k2_paper_collapses_to_h_power_n_minus_2(self):
        # H^{N-1} + (1-H)H^{N-2} = H^{N-2}: Proposition 1's simplification.
        h = np.linspace(0.0, 1.0, 11)
        np.testing.assert_allclose(win_kernel(h, 9, 2, "paper"), h ** 7, atol=1e-12)

    def test_exact_kernel_is_probability(self):
        h = np.linspace(0.0, 1.0, 101)
        for k in (1, 3, 7):
            g = win_kernel(h, 10, k, "exact")
            assert np.all(g >= -1e-12) and np.all(g <= 1.0 + 1e-12)

    def test_exact_kernel_boundary_values(self):
        # H=1: certain win (all others below). H=0 with K<N: certain loss.
        assert win_kernel(1.0, 10, 3, "exact") == pytest.approx(1.0)
        assert win_kernel(0.0, 10, 3, "exact") == pytest.approx(0.0)

    def test_exact_kernel_matches_monte_carlo(self):
        # Being among the top K of N iid uniforms.
        rng = np.random.default_rng(0)
        n, k = 8, 3
        h = 0.6  # our score beats a competitor w.p. 0.6
        wins = 0
        trials = 20000
        for _ in range(trials):
            better = np.sum(rng.random(n - 1) > h)
            wins += better <= k - 1
        mc = wins / trials
        assert win_kernel(h, n, k, "exact") == pytest.approx(mc, abs=0.02)

    def test_k_equal_n_exact_always_wins(self):
        h = np.linspace(0.0, 1.0, 21)
        np.testing.assert_allclose(win_kernel(h, 5, 5, "exact"), np.ones(21))

    def test_invalid_model_rejected(self):
        with pytest.raises(ValueError):
            win_kernel(0.5, 5, 2, "bogus")
        with pytest.raises(ValueError):
            win_kernel(0.5, 5, 6, "paper")


class TestOptimizeQuality:
    def test_additive_quadratic_closed_form(self):
        # q_j* = alpha_j / (2 theta beta_j).
        rule = AdditiveScore([0.5, 1.0])
        cost = QuadraticCost([1.0, 2.0])
        bounds = np.array([[0.0, 10.0], [0.0, 10.0]])
        q = optimize_quality(rule, cost, 0.25, bounds)
        np.testing.assert_allclose(q, [1.0, 1.0])

    def test_additive_quadratic_respects_bounds(self):
        rule = AdditiveScore([10.0, 10.0])
        cost = QuadraticCost([1.0, 1.0])
        bounds = np.array([[0.0, 1.0], [0.0, 1.0]])
        q = optimize_quality(rule, cost, 0.1, bounds)
        np.testing.assert_allclose(q, [1.0, 1.0])  # interior optimum clipped

    def test_additive_linear_bang_bang(self):
        rule = AdditiveScore([0.5, 0.5])
        cost = LinearCost([1.0, 0.2])
        bounds = np.array([[0.0, 2.0], [0.0, 2.0]])
        q = optimize_quality(rule, cost, 0.8, bounds)
        # dim 0: 0.5 < 0.8*1.0 -> lo; dim 1: 0.5 > 0.8*0.2 -> hi.
        np.testing.assert_allclose(q, [0.0, 2.0])

    def test_numeric_fallback_beats_midpoint(self):
        rule = CobbDouglasScore([0.5, 0.5], scale=4.0)
        cost = LinearCost([1.0, 1.0])
        bounds = np.array([[0.01, 3.0], [0.01, 3.0]])
        q = optimize_quality(rule, cost, 0.5, bounds)
        mid = np.array([1.5, 1.5])
        value_q = rule.value(q) - cost.cost(q, 0.5)
        value_mid = rule.value(mid) - cost.cost(mid, 0.5)
        assert value_q >= value_mid - 1e-9

    def test_monotone_decreasing_in_theta(self):
        rule = AdditiveScore([1.0])
        cost = QuadraticCost([1.0])
        bounds = np.array([[0.0, 100.0]])
        q_low = optimize_quality(rule, cost, 0.2, bounds)
        q_high = optimize_quality(rule, cost, 0.9, bounds)
        assert q_low[0] > q_high[0]

    def test_rejects_bad_bounds(self):
        rule = AdditiveScore([1.0, 1.0])
        cost = QuadraticCost([1.0, 1.0])
        with pytest.raises(ValueError):
            optimize_quality(rule, cost, 0.5, np.array([[0.0, 1.0]]))
        with pytest.raises(ValueError):
            optimize_quality(rule, cost, 0.5, np.array([[1.0, 0.0], [0.0, 1.0]]))


class TestEquilibriumSolver:
    def test_quality_interpolation_matches_closed_form(self, additive_quadratic_solver):
        s = additive_quadratic_solver
        for theta in (0.15, 0.4, 0.85):
            expected = 0.5 / (2.0 * theta)  # alpha/(2 theta beta)
            q = s.optimal_quality(theta)
            assert q[0] == pytest.approx(min(expected, 10.0), rel=1e-3)
            assert q[1] == pytest.approx(min(expected, 1.0), rel=1e-3)

    def test_max_score_decreasing_in_theta(self, additive_quadratic_solver):
        s = additive_quadratic_solver
        thetas = np.linspace(0.1, 1.0, 13)
        u = [s.max_score(float(t)) for t in thetas]
        assert all(a >= b - 1e-9 for a, b in zip(u, u[1:]))

    def test_score_cdf_boundaries(self, additive_quadratic_solver):
        s = additive_quadratic_solver
        assert s.score_cdf(s.u_incr[0] - 1.0) == pytest.approx(0.0)
        assert s.score_cdf(s.u_incr[-1] + 1.0) == pytest.approx(1.0)

    def test_k1_matches_che_theorem_2(self, single_winner_solver):
        s = single_winner_solver
        for theta in (0.15, 0.3, 0.5, 0.8):
            assert s.payment(theta) == pytest.approx(
                s.payment_che_closed_form(theta), rel=2e-3
            )

    def test_k2_matches_proposition_1(self):
        rule = AdditiveScore([0.5, 0.5])
        cost = QuadraticCost([1.0, 1.0])
        model = PrivateValueModel(UniformTheta(0.1, 1.0), n_nodes=9, k_winners=2)
        s = EquilibriumSolver(rule, cost, model, [[0, 10], [0, 1]], grid_size=257)
        for theta in (0.2, 0.5, 0.8):
            assert s.payment(theta) == pytest.approx(
                s.payment_che_closed_form(theta), rel=2e-3
            )

    def test_backends_agree(self, additive_quadratic_solver):
        s = additive_quadratic_solver
        for theta in (0.2, 0.6):
            quad = s.payment(theta, method="quadrature")
            euler = s.payment(theta, method="euler")
            rk4 = s.payment(theta, method="rk4")
            assert euler == pytest.approx(quad, rel=5e-3)
            assert rk4 == pytest.approx(quad, rel=5e-3)

    def test_payment_covers_cost(self, additive_quadratic_solver):
        s = additive_quadratic_solver
        for theta in np.linspace(0.1, 1.0, 10):
            q = s.optimal_quality(float(theta))
            assert s.payment(float(theta)) >= s.cost.cost(q, float(theta)) - 1e-9

    def test_worst_type_has_zero_margin(self, additive_quadratic_solver):
        s = additive_quadratic_solver
        assert s.margin(1.0) == pytest.approx(0.0, abs=1e-6)

    def test_margin_decreasing_in_theta(self, additive_quadratic_solver):
        s = additive_quadratic_solver
        margins = [s.margin(float(t)) for t in np.linspace(0.1, 1.0, 12)]
        assert all(a >= b - 1e-9 for a, b in zip(margins, margins[1:]))

    def test_equilibrium_score_below_max_score(self, additive_quadratic_solver):
        s = additive_quadratic_solver
        for theta in (0.15, 0.5, 0.9):
            assert s.equilibrium_score(theta) <= s.max_score(theta) + 1e-12

    def test_bid_with_capacity_caps_quality(self, multiplicative_solver):
        s = multiplicative_solver
        cap = np.array([0.5, 0.3])
        q, p = s.bid_with_capacity(0.2, cap)
        assert np.all(q <= cap + 1e-12)
        assert p >= s.cost.cost(q, 0.2) - 1e-9

    def test_bid_with_capacity_unbinding_equals_bid(self, multiplicative_solver):
        s = multiplicative_solver
        cap = np.array([100.0, 100.0])
        q_cap, p_cap = s.bid_with_capacity(0.3, cap)
        q, p = s.bid(0.3)
        np.testing.assert_allclose(q_cap, q)
        assert p_cap == pytest.approx(p)

    def test_with_population_changes_kernel_only(self, additive_quadratic_solver):
        s = additive_quadratic_solver
        s2 = s.with_population(n_nodes=50)
        np.testing.assert_allclose(s2.quality_grid, s.quality_grid)
        assert s2.model.n_nodes == 50
        # More competition -> lower margin for a competitive type.
        assert s2.margin(0.2) <= s.margin(0.2) + 1e-12

    def test_theorem2_profit_decreasing_in_n(self, additive_quadratic_solver):
        s = additive_quadratic_solver
        profits = [
            s.with_population(n_nodes=n).expected_profit(0.3) for n in (5, 10, 20, 40)
        ]
        assert all(a >= b - 1e-12 for a, b in zip(profits, profits[1:]))

    def test_theorem3_profit_increasing_in_k(self, additive_quadratic_solver):
        s = additive_quadratic_solver
        profits = [
            s.with_population(k_winners=k).expected_profit(0.5) for k in (1, 3, 5, 8)
        ]
        assert all(b >= a - 1e-12 for a, b in zip(profits, profits[1:]))

    def test_rejects_theta_outside_support(self, additive_quadratic_solver):
        with pytest.raises(ValueError):
            additive_quadratic_solver.payment(2.0)

    def test_rejects_unknown_win_model(self):
        rule = AdditiveScore([1.0])
        cost = QuadraticCost([1.0])
        model = PrivateValueModel(UniformTheta(0.1, 1.0), 5, 1)
        with pytest.raises(ValueError):
            EquilibriumSolver(rule, cost, model, [[0, 1]], win_model="nope")

    def test_rejects_dimension_mismatch(self):
        rule = AdditiveScore([1.0, 1.0])
        cost = QuadraticCost([1.0])
        model = PrivateValueModel(UniformTheta(0.1, 1.0), 5, 1)
        with pytest.raises(ValueError):
            EquilibriumSolver(rule, cost, model, [[0, 1], [0, 1]])
