"""Gradient checks and behavioural tests for Embedding and LSTM."""

import numpy as np
import pytest

from repro.fl.nn.recurrent import LSTM, Embedding


class TestEmbedding:
    def test_lookup(self, rng):
        layer = Embedding(10, 4)
        layer.build((3,), rng)
        ids = np.array([[0, 1, 2]])
        out = layer.forward(ids)
        np.testing.assert_array_equal(out[0, 0], layer.params[0][0])
        np.testing.assert_array_equal(out[0, 2], layer.params[0][2])

    def test_gradient_accumulates_repeated_tokens(self, rng):
        layer = Embedding(5, 3)
        layer.build((4,), rng)
        ids = np.array([[1, 1, 2, 1]])
        out = layer.forward(ids)
        gy = np.ones_like(out)
        layer.backward(gy)
        # Token 1 appears 3x -> its gradient row is 3x the ones vector.
        np.testing.assert_allclose(layer.grads[0][1], [3.0, 3.0, 3.0])
        np.testing.assert_allclose(layer.grads[0][2], [1.0, 1.0, 1.0])
        np.testing.assert_allclose(layer.grads[0][0], [0.0, 0.0, 0.0])

    def test_param_gradient_finite_difference(self, rng):
        layer = Embedding(6, 3)
        layer.build((5,), rng)
        ids = rng.integers(0, 6, size=(2, 5))
        out = layer.forward(ids)
        gy = rng.standard_normal(out.shape)
        layer.forward(ids)
        layer.backward(gy)
        table = layer.params[0]
        eps = 1e-6
        for _ in range(20):
            i = rng.integers(6)
            j = rng.integers(3)
            orig = table[i, j]
            table[i, j] = orig + eps
            fp = float(np.sum(layer.forward(ids) * gy))
            table[i, j] = orig - eps
            fm = float(np.sum(layer.forward(ids) * gy))
            table[i, j] = orig
            num = (fp - fm) / (2 * eps)
            assert layer.grads[0][i, j] == pytest.approx(num, abs=1e-6)

    def test_rejects_float_input(self, rng):
        layer = Embedding(5, 2)
        layer.build((3,), rng)
        with pytest.raises(TypeError):
            layer.forward(np.array([[0.5, 1.0, 2.0]]))

    def test_rejects_out_of_vocab(self, rng):
        layer = Embedding(5, 2)
        layer.build((2,), rng)
        with pytest.raises(ValueError):
            layer.forward(np.array([[0, 7]]))


class TestLSTM:
    def test_output_is_last_hidden(self, rng):
        layer = LSTM(6)
        layer.build((4, 3), rng)
        out = layer.forward(rng.standard_normal((2, 4, 3)))
        assert out.shape == (2, 6)

    def test_input_gradient_finite_difference(self, rng, nn_backend):
        layer = LSTM(4)
        layer.build((3, 5), rng)
        x = rng.standard_normal((2, 3, 5))
        out = layer.forward(x)
        gy = rng.standard_normal(out.shape)
        layer.forward(x)
        gx = layer.backward(gy)
        eps = 1e-6
        flat = x.reshape(-1)
        for i in rng.choice(flat.size, size=20, replace=False):
            orig = flat[i]
            flat[i] = orig + eps
            fp = float(np.sum(layer.forward(x) * gy))
            flat[i] = orig - eps
            fm = float(np.sum(layer.forward(x) * gy))
            flat[i] = orig
            num = (fp - fm) / (2 * eps)
            assert gx.reshape(-1)[i] == pytest.approx(num, abs=1e-6)

    def test_param_gradient_finite_difference(self, rng, nn_backend):
        layer = LSTM(3)
        layer.build((3, 4), rng)
        x = rng.standard_normal((2, 3, 4))
        out = layer.forward(x)
        gy = rng.standard_normal(out.shape)
        layer.forward(x)
        layer.backward(gy)
        eps = 1e-6
        for p, g in zip(layer.params, layer.grads):
            flat = p.reshape(-1)
            gflat = g.reshape(-1)
            for i in rng.choice(flat.size, size=min(15, flat.size), replace=False):
                orig = flat[i]
                flat[i] = orig + eps
                fp = float(np.sum(layer.forward(x) * gy))
                flat[i] = orig - eps
                fm = float(np.sum(layer.forward(x) * gy))
                flat[i] = orig
                num = (fp - fm) / (2 * eps)
                assert gflat[i] == pytest.approx(num, abs=1e-5)

    def test_forget_bias_initialised_to_one(self, rng):
        layer = LSTM(5)
        layer.build((3, 2), rng)
        b = layer.params[2]
        np.testing.assert_allclose(b[5:10], np.ones(5))
        np.testing.assert_allclose(b[:5], np.zeros(5))

    def test_longer_sequences_stay_finite(self, rng):
        layer = LSTM(8)
        layer.build((50, 4), rng)
        out = layer.forward(rng.standard_normal((3, 50, 4)) * 3)
        assert np.all(np.isfinite(out))
        grad = layer.backward(rng.standard_normal(out.shape))
        assert np.all(np.isfinite(grad))
