"""Property-based tests for FL substrate invariants."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.psi import PsiSelection, negative_binomial_fill_probability
from repro.fl.client import LocalUpdate
from repro.fl.server import federated_average


@st.composite
def weight_updates(draw):
    n_updates = draw(st.integers(1, 5))
    shapes = [(3,), (2, 2)]
    updates = []
    for i in range(n_updates):
        ws = [
            np.asarray(
                draw(
                    st.lists(
                        st.floats(-10, 10, allow_nan=False),
                        min_size=int(np.prod(s)),
                        max_size=int(np.prod(s)),
                    )
                )
            ).reshape(s)
            for s in shapes
        ]
        updates.append(LocalUpdate(i, ws, draw(st.integers(0, 100)), 0.0))
    return updates


@given(updates=weight_updates())
@settings(max_examples=50, deadline=None)
def test_fedavg_within_convex_hull(updates):
    """Eq. 3: every averaged coordinate lies inside [min, max] of inputs."""
    avg = federated_average(updates)
    for j, a in enumerate(avg):
        stack = np.stack([u.weights[j] for u in updates])
        assert np.all(a >= stack.min(axis=0) - 1e-9)
        assert np.all(a <= stack.max(axis=0) + 1e-9)


@given(updates=weight_updates(), scale=st.floats(0.1, 10.0))
@settings(max_examples=50, deadline=None)
def test_fedavg_homogeneous(updates, scale):
    """Scaling all inputs scales the average (linearity of Eq. 3)."""
    avg = federated_average(updates)
    scaled = [
        LocalUpdate(u.client_id, [w * scale for w in u.weights], u.n_samples, 0.0)
        for u in updates
    ]
    avg_scaled = federated_average(scaled)
    for a, b in zip(avg, avg_scaled):
        np.testing.assert_allclose(b, a * scale, atol=1e-9)


@given(n=st.integers(1, 30), weight=st.integers(1, 50))
@settings(max_examples=30, deadline=None)
def test_fedavg_identical_updates_fixed_point(n, weight):
    w = [np.arange(4.0).reshape(2, 2)]
    updates = [LocalUpdate(i, [x.copy() for x in w], weight, 0.0) for i in range(n)]
    avg = federated_average(updates)
    np.testing.assert_allclose(avg[0], w[0])


@given(
    psi=st.floats(0.05, 1.0),
    n=st.integers(2, 40),
    k=st.integers(1, 10),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=80, deadline=None)
def test_psi_selection_valid_positions(psi, n, k, seed):
    k = min(k, n)
    chosen = PsiSelection(psi).select(n, k, np.random.default_rng(seed))
    assert len(chosen) == k
    assert all(0 <= pos < n for pos in chosen)
    assert len(set(chosen)) == k


@given(psi=st.floats(0.05, 1.0), n=st.integers(2, 25), k=st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_fill_probability_in_unit_interval(psi, n, k):
    k = min(k, n)
    p = negative_binomial_fill_probability(psi, n, k)
    assert 0.0 <= p <= 1.0
