"""Property-based tests for FL substrate invariants."""

import json
import tempfile
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.psi import PsiSelection, negative_binomial_fill_probability
from repro.fl.client import LocalUpdate
from repro.fl.server import federated_average


@st.composite
def weight_updates(draw):
    n_updates = draw(st.integers(1, 5))
    shapes = [(3,), (2, 2)]
    updates = []
    for i in range(n_updates):
        ws = [
            np.asarray(
                draw(
                    st.lists(
                        st.floats(-10, 10, allow_nan=False),
                        min_size=int(np.prod(s)),
                        max_size=int(np.prod(s)),
                    )
                )
            ).reshape(s)
            for s in shapes
        ]
        updates.append(LocalUpdate(i, ws, draw(st.integers(0, 100)), 0.0))
    return updates


@given(updates=weight_updates())
@settings(max_examples=50, deadline=None)
def test_fedavg_within_convex_hull(updates):
    """Eq. 3: every averaged coordinate lies inside [min, max] of inputs."""
    avg = federated_average(updates)
    for j, a in enumerate(avg):
        stack = np.stack([u.weights[j] for u in updates])
        assert np.all(a >= stack.min(axis=0) - 1e-9)
        assert np.all(a <= stack.max(axis=0) + 1e-9)


@given(updates=weight_updates(), scale=st.floats(0.1, 10.0))
@settings(max_examples=50, deadline=None)
def test_fedavg_homogeneous(updates, scale):
    """Scaling all inputs scales the average (linearity of Eq. 3)."""
    avg = federated_average(updates)
    scaled = [
        LocalUpdate(u.client_id, [w * scale for w in u.weights], u.n_samples, 0.0)
        for u in updates
    ]
    avg_scaled = federated_average(scaled)
    for a, b in zip(avg, avg_scaled):
        np.testing.assert_allclose(b, a * scale, atol=1e-9)


@given(n=st.integers(1, 30), weight=st.integers(1, 50))
@settings(max_examples=30, deadline=None)
def test_fedavg_identical_updates_fixed_point(n, weight):
    w = [np.arange(4.0).reshape(2, 2)]
    updates = [LocalUpdate(i, [x.copy() for x in w], weight, 0.0) for i in range(n)]
    avg = federated_average(updates)
    np.testing.assert_allclose(avg[0], w[0])


@given(
    psi=st.floats(0.05, 1.0),
    n=st.integers(2, 40),
    k=st.integers(1, 10),
    seed=st.integers(0, 2**16),
)
@settings(max_examples=80, deadline=None)
def test_psi_selection_valid_positions(psi, n, k, seed):
    k = min(k, n)
    chosen = PsiSelection(psi).select(n, k, np.random.default_rng(seed))
    assert len(chosen) == k
    assert all(0 <= pos < n for pos in chosen)
    assert len(set(chosen)) == k


@given(psi=st.floats(0.05, 1.0), n=st.integers(2, 25), k=st.integers(1, 8))
@settings(max_examples=60, deadline=None)
def test_fill_probability_in_unit_interval(psi, n, k):
    k = min(k, n)
    p = negative_binomial_fill_probability(psi, n, k)
    assert 0.0 <= p <= 1.0


# ----------------------------------------------------------------------
# Within-round local-training pool: executor choice is bitwise-invisible
# ----------------------------------------------------------------------

_LOCAL_POOLS = (
    {"executor": "serial"},
    {"executor": "thread", "max_workers": 3},
    {"executor": "process", "max_workers": 2},
)


def _local_scenario(local_training, seed):
    from repro.api import Scenario

    execution = {"executor": "serial", "max_workers": None}
    if local_training is not None:
        execution = {**execution, "local_training": dict(local_training)}
    return Scenario.from_preset("smoke", "mnist_o", seeds=(seed,)).with_(
        execution=execution
    )


def _run_cell(local_training, scheme, seed):
    """Final weights + serialised records for one (scheme, seed) cell."""
    from repro.api.engine import make_session

    session = make_session(_local_scenario(local_training, seed), scheme, seed)
    history = session.run()
    weights = session.trainer.server.model.get_weights()
    return weights, [r.to_dict() for r in history.records]


@given(
    scheme=st.sampled_from(("FMore", "RandFL", "FixFL")),
    seed=st.integers(0, 7),
)
@settings(max_examples=5, deadline=None)
def test_local_pool_type_is_bitwise_invisible(scheme, seed):
    """Serial, thread and process local pools agree byte for byte.

    Per-winner derived RNG streams make each local run independent of
    scheduling, and updates aggregate in winner-id order — so the pool
    type can change the wall-clock but never a single bit of the
    weights or the round records.
    """
    reference_weights, reference_records = _run_cell(_LOCAL_POOLS[0], scheme, seed)
    for pool in _LOCAL_POOLS[1:]:
        weights, records = _run_cell(pool, scheme, seed)
        assert records == reference_records
        assert len(weights) == len(reference_weights)
        for got, want in zip(weights, reference_weights):
            assert got.tobytes() == want.tobytes()


@given(seed=st.integers(0, 7))
@settings(max_examples=3, deadline=None)
def test_legacy_schedule_unchanged_without_local_training(seed):
    """No local_training spec -> the historical sequential schedule.

    Two independent runs of the legacy path must agree with each other
    (determinism) and differ from the derived-stream local path (the
    spec's presence is content, not plan — see scenario_hash).
    """
    first_weights, first_records = _run_cell(None, "FMore", seed)
    second_weights, second_records = _run_cell(None, "FMore", seed)
    assert first_records == second_records
    for got, want in zip(first_weights, second_weights):
        assert got.tobytes() == want.tobytes()
    _, local_records = _run_cell(_LOCAL_POOLS[0], "FMore", seed)
    assert local_records != first_records


@pytest.mark.parametrize("pool", _LOCAL_POOLS[1:], ids=lambda p: p["executor"])
def test_local_pool_manifests_and_resume_bitwise(pool):
    """Store manifests match across pools, including checkpoint/resume.

    An interrupted local-training run (checkpoint_every=1, stop_after=1)
    resumed to completion writes byte-identical manifests to both an
    uninterrupted run under the same pool and a serial-pool run — the
    store cannot tell any of them apart.
    """
    from repro.api import FMoreEngine, IncompleteRunError

    def manifests(local_training, interrupt):
        scenario = _local_scenario(local_training, seed=3)
        with tempfile.TemporaryDirectory() as root:
            engine = FMoreEngine()
            if interrupt:
                with pytest.raises(IncompleteRunError):
                    engine.run(
                        scenario, store=root, checkpoint_every=1, stop_after=1
                    )
                engine.run(scenario, store=root, resume=True)
            else:
                engine.run(scenario, store=root)
            # Compare the cell *history* manifests only: the store's
            # scenario snapshot legitimately records the run plan (the
            # executor names), which is exactly what must not leak into
            # the results.
            docs = {
                p.name: json.loads(p.read_text())
                for p in sorted(Path(root).rglob("*.json"))
            }
            return {
                name: doc for name, doc in docs.items() if "history" in doc
            }

    straight = manifests(pool, interrupt=False)
    resumed = manifests(pool, interrupt=True)
    serial = manifests(_LOCAL_POOLS[0], interrupt=False)
    n_cells = len(_local_scenario(None, 3).schemes)
    assert len(straight) == n_cells
    assert straight == resumed
    assert straight == serial
