"""Tests for the experiment harness: config, rng, reporting, runner."""

import numpy as np
import pytest

from repro.sim.config import AuctionConfig, ExperimentConfig, PRESET_NAMES, preset
from repro.sim.reporting import ascii_table, fmt, paper_vs_measured, series_table
from repro.sim.rng import rng_from, spawn_rngs
from repro.sim.runner import SeriesStats, average_histories
from repro.fl.trainer import RoundRecord, TrainingHistory


class TestConfig:
    @pytest.mark.parametrize("scale", PRESET_NAMES)
    @pytest.mark.parametrize("ds", ["mnist_o", "cifar10", "hpnews"])
    def test_presets_construct(self, scale, ds):
        cfg = preset(scale, ds)
        assert cfg.dataset == ds
        assert 1 <= cfg.k_winners <= cfg.n_clients

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            preset("huge", "mnist_o")

    def test_with_creates_modified_copy(self):
        cfg = preset("smoke")
        cfg2 = cfg.with_(n_rounds=7)
        assert cfg2.n_rounds == 7
        assert cfg.n_rounds != 7 or cfg.n_rounds == cfg2.n_rounds  # original intact

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentConfig(n_clients=1)
        with pytest.raises(ValueError):
            ExperimentConfig(n_clients=10, k_winners=11)
        with pytest.raises(ValueError):
            AuctionConfig(theta_lo=1.0, theta_hi=0.5)
        with pytest.raises(ValueError):
            AuctionConfig(psi=1.5)

    def test_dataset_lr_calibration(self):
        assert preset("bench", "cifar10").lr < preset("bench", "mnist_o").lr
        assert preset("bench", "hpnews").lr > preset("bench", "mnist_o").lr


class TestRng:
    def test_spawn_independence(self):
        a, b = spawn_rngs(1, 2)
        assert not np.allclose(a.random(10), b.random(10))

    def test_named_streams_reproducible(self):
        x = rng_from(5, "data").random(5)
        y = rng_from(5, "data").random(5)
        np.testing.assert_array_equal(x, y)

    def test_named_streams_distinct(self):
        x = rng_from(5, "data").random(5)
        y = rng_from(5, "theta").random(5)
        assert not np.allclose(x, y)

    def test_seed_changes_stream(self):
        x = rng_from(5, "data").random(5)
        y = rng_from(6, "data").random(5)
        assert not np.allclose(x, y)


class TestReporting:
    def test_fmt(self):
        assert fmt(None) == "n/a"
        assert fmt(0.123456) == "0.1235"
        assert fmt(12345.6) == "12,345.6"
        assert fmt("abc") == "abc"
        assert fmt(float("nan")) == "nan"

    def test_ascii_table_alignment(self):
        table = ascii_table(["a", "bb"], [[1, 2], [33, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert set(lines[1]) <= {"-", " "}

    def test_ascii_table_rejects_ragged(self):
        with pytest.raises(ValueError):
            ascii_table(["a"], [[1, 2]])

    def test_series_table(self):
        out = series_table("T", "round", [1, 2], {"acc": [0.1, 0.2]})
        assert "T" in out and "round" in out and "acc" in out

    def test_paper_vs_measured(self):
        out = paper_vs_measured([("accuracy", 0.95, 0.93)])
        assert "paper" in out and "measured" in out


class TestRunner:
    def make_history(self, accs):
        h = TrainingHistory("X")
        for i, a in enumerate(accs, start=1):
            h.records.append(RoundRecord(i, a, 1 - a, [0], 0.0, round_seconds=1.0))
        return h

    def test_average(self):
        h1 = self.make_history([0.2, 0.4])
        h2 = self.make_history([0.4, 0.6])
        stats = average_histories([h1, h2])
        np.testing.assert_allclose(stats["accuracy"].mean, [0.3, 0.5])
        np.testing.assert_allclose(stats["accuracy"].std, [0.1, 0.1])
        np.testing.assert_allclose(stats["cumulative_seconds"].mean, [1.0, 2.0])

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            average_histories([self.make_history([0.1]), self.make_history([0.1, 0.2])])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            average_histories([])
