"""Tests for the deprecated sim experiment-builder shims.

These keep exercising the legacy ``ExperimentConfig``-based surface until
it is removed; the shims warn on every call, so the module filters the
expected :class:`DeprecationWarning` (and asserts it once, explicitly).
"""

import numpy as np
import pytest

from repro.fl.selection import AuctionSelection, FixedSelection, RandomSelection
from repro.sim import (
    build_agents,
    build_federation,
    build_selection,
    build_solver,
    preset,
)

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


class TestDeprecation:
    def test_builders_warn(self):
        with pytest.warns(DeprecationWarning, match="repro.api"):
            build_federation(preset("smoke", "mnist_o"), seed=0)

    def test_run_comparison_warns(self):
        from repro.sim import run_comparison

        cfg = preset("smoke", "mnist_o").with_(n_rounds=1)
        with pytest.warns(DeprecationWarning, match="FMoreEngine"):
            run_comparison(cfg, ("RandFL",), seed=0)


@pytest.fixture(scope="module")
def cfg():
    return preset("smoke", "mnist_o")


@pytest.fixture(scope="module")
def federation(cfg):
    return build_federation(cfg, seed=4)


class TestBuildFederation:
    def test_counts(self, cfg, federation):
        assert federation.n_clients == cfg.n_clients
        assert federation.thetas.shape == (cfg.n_clients,)
        assert federation.test_x.shape[0] == cfg.test_per_class * 10

    def test_deterministic_given_seed(self, cfg, federation):
        again = build_federation(cfg, seed=4)
        np.testing.assert_array_equal(again.thetas, federation.thetas)
        np.testing.assert_array_equal(again.test_y, federation.test_y)
        for a, b in zip(again.clients_data, federation.clients_data):
            np.testing.assert_array_equal(a.y, b.y)

    def test_different_seed_different_data(self, cfg, federation):
        other = build_federation(cfg, seed=5)
        assert not np.allclose(other.thetas, federation.thetas)

    def test_thetas_within_support(self, cfg, federation):
        assert federation.thetas.min() >= cfg.auction.theta_lo
        assert federation.thetas.max() <= cfg.auction.theta_hi

    def test_sizes_within_config_range(self, cfg, federation):
        lo, hi = cfg.size_range
        for c in federation.clients_data:
            assert c.size <= hi * 1.1  # rounding slack
            assert c.size >= 1


class TestBuildSolver:
    def test_bounds_follow_size_range(self, cfg):
        solver = build_solver(cfg)
        hi_q1 = cfg.size_range[1] / 1000.0
        assert solver.quality_bounds[0, 1] == pytest.approx(hi_q1)
        assert solver.quality_bounds[1, 1] == pytest.approx(1.0)

    def test_population_overrides(self, cfg):
        solver = build_solver(cfg, n_clients=77, k_winners=9)
        assert solver.model.n_nodes == 77
        assert solver.model.k_winners == 9


class TestBuildAgents:
    def test_capacity_matches_client_data(self, cfg, federation):
        solver = build_solver(cfg)
        agents = build_agents(cfg, federation, solver)
        for agent, data in zip(agents, federation.clients_data):
            assert agent.node_id == data.client_id
            assert agent.profile.data_size == data.size

    def test_theta_jitter_wired(self, cfg, federation):
        solver = build_solver(cfg)
        agents = build_agents(cfg, federation, solver)
        assert all(a.theta_jitter == cfg.theta_jitter for a in agents)


class TestBuildSelection:
    def test_scheme_types(self, cfg, federation):
        assert isinstance(
            build_selection(cfg, "RandFL", federation, 0), RandomSelection
        )
        assert isinstance(build_selection(cfg, "FixFL", federation, 0), FixedSelection)
        solver = build_solver(cfg)
        fmore = build_selection(cfg, "FMore", federation, 0, solver=solver)
        assert isinstance(fmore, AuctionSelection)
        assert fmore.name == "FMore"
        psi = build_selection(cfg, "PsiFMore", federation, 0, solver=solver)
        assert psi.name == "PsiFMore"

    def test_unknown_scheme(self, cfg, federation):
        with pytest.raises(ValueError):
            build_selection(cfg, "Oracle", federation, 0)

    def test_quality_to_samples_scale(self, cfg, federation):
        solver = build_solver(cfg)
        sel = build_selection(cfg, "FMore", federation, 0, solver=solver)
        assert sel.quality_to_samples(np.array([1.2, 0.5])) == 1200
