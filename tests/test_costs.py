"""Unit tests for cost models and the single-crossing conditions."""

import numpy as np
import pytest

from repro.core.costs import (
    LinearCost,
    PowerCost,
    QuadraticCost,
    check_single_crossing,
)


class TestLinearCost:
    def test_value(self):
        cost = LinearCost([4.0, 2.0])
        assert cost.cost(np.array([1.0, 0.5]), theta=0.5) == pytest.approx(2.5)

    def test_gradient(self):
        cost = LinearCost([4.0, 2.0])
        np.testing.assert_allclose(
            cost.gradient_q(np.array([1.0, 1.0]), 0.5), [2.0, 1.0]
        )

    def test_d_theta_is_cost_over_theta(self):
        cost = LinearCost([4.0, 2.0])
        q = np.array([2.0, 1.0])
        assert cost.d_theta(q, 0.7) == pytest.approx(cost.cost(q, 0.7) / 0.7)

    def test_batch_matches_scalar(self):
        cost = LinearCost([1.0, 3.0])
        q = np.array([[1.0, 2.0], [0.5, 0.5]])
        np.testing.assert_allclose(
            cost.cost_batch(q, 0.4), [cost.cost(q[0], 0.4), cost.cost(q[1], 0.4)]
        )

    def test_increasing_in_theta(self):
        cost = LinearCost([1.0, 1.0])
        q = np.array([1.0, 1.0])
        assert cost.cost(q, 0.9) > cost.cost(q, 0.2)


class TestQuadraticCost:
    def test_value(self):
        cost = QuadraticCost([1.0, 2.0])
        assert cost.cost(np.array([2.0, 1.0]), 0.5) == pytest.approx(3.0)

    def test_gradient_matches_finite_difference(self):
        cost = QuadraticCost([1.5, 0.5])
        q = np.array([1.2, 0.8])
        grad = cost.gradient_q(q, 0.6)
        eps = 1e-6
        for j in range(2):
            qp, qm = q.copy(), q.copy()
            qp[j] += eps
            qm[j] -= eps
            num = (cost.cost(qp, 0.6) - cost.cost(qm, 0.6)) / (2 * eps)
            assert grad[j] == pytest.approx(num, rel=1e-5)


class TestPowerCost:
    def test_gamma_one_equals_linear(self):
        power = PowerCost([2.0, 3.0], gammas=1.0)
        linear = LinearCost([2.0, 3.0])
        q = np.array([1.5, 0.5])
        assert power.cost(q, 0.4) == pytest.approx(linear.cost(q, 0.4))

    def test_gamma_two_equals_quadratic(self):
        power = PowerCost([2.0, 3.0], gammas=2.0)
        quad = QuadraticCost([2.0, 3.0])
        q = np.array([1.5, 0.5])
        assert power.cost(q, 0.4) == pytest.approx(quad.cost(q, 0.4))

    def test_mixed_gammas(self):
        cost = PowerCost([1.0, 1.0], gammas=[1.0, 3.0])
        assert cost.cost(np.array([2.0, 2.0]), 1.0) == pytest.approx(10.0)

    def test_rejects_gamma_below_one(self):
        with pytest.raises(ValueError):
            PowerCost([1.0], gammas=0.5)

    def test_rejects_negative_quality(self):
        cost = PowerCost([1.0], gammas=2.0)
        with pytest.raises(ValueError):
            cost.cost(np.array([-1.0]), 0.5)


class TestSingleCrossing:
    """The paper's assumptions: c_qq >= 0, c_q_theta > 0, c_qq_theta >= 0."""

    @pytest.mark.parametrize(
        "cost",
        [
            LinearCost([1.0, 2.0]),
            QuadraticCost([1.0, 0.5]),
            PowerCost([1.0, 1.0], gammas=[1.5, 3.0]),
        ],
        ids=["linear", "quadratic", "power"],
    )
    def test_families_satisfy_single_crossing(self, cost):
        grid = np.array([[0.5, 0.5], [1.0, 2.0], [3.0, 1.0]])
        report = check_single_crossing(cost, grid, [0.2, 0.5, 0.9])
        assert report.satisfied

    def test_detects_violation(self):
        class DecreasingMarginal(LinearCost):
            # c = (1 - theta) * sum(beta q): marginal cost falls with theta.
            def cost(self, quality, theta):
                return float((1.0 - theta) * np.dot(self.betas, np.asarray(quality)))

        report = check_single_crossing(
            DecreasingMarginal([1.0]), np.array([[1.0]]), [0.3, 0.6]
        )
        assert not report.increasing_marginal
        assert not report.satisfied
