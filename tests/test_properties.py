"""Tests for mechanism properties: IR, IC (Thm 5), Pareto efficiency (Thm 4)."""

import numpy as np
import pytest

from repro.core.auction import MultiDimensionalProcurementAuction
from repro.core.bids import Bid
from repro.core.costs import QuadraticCost
from repro.core.properties import (
    check_incentive_compatibility,
    is_individually_rational,
    max_social_surplus,
    pareto_gap,
    profit_of_payment_deviation,
    realized_social_surplus,
    social_surplus,
)
from repro.core.scoring import AdditiveScore


class TestIndividualRationality:
    def test_positive_margin_ok(self):
        assert is_individually_rational(payment=2.0, cost_value=1.5)

    def test_negative_margin_fails(self):
        assert not is_individually_rational(payment=1.0, cost_value=1.5)

    def test_equilibrium_bids_are_ir(self, additive_quadratic_solver):
        s = additive_quadratic_solver
        for theta in np.linspace(0.1, 1.0, 12):
            q, p = s.bid(float(theta))
            assert is_individually_rational(p, s.cost.cost(q, float(theta)))


class TestIncentiveCompatibility:
    def test_no_violation_found(self, additive_quadratic_solver, rng):
        for theta in (0.15, 0.4, 0.75):
            violation = check_incentive_compatibility(
                additive_quadratic_solver, theta, rng, n_trials=64
            )
            assert violation is None

    def test_multiplicative_environment(self, multiplicative_solver, rng):
        violation = check_incentive_compatibility(
            multiplicative_solver, 0.3, rng, n_trials=64
        )
        assert violation is None

    def test_equilibrium_payment_near_optimal_deviation(self, single_winner_solver):
        """No unilateral payment deviation improves expected profit (K=1)."""
        s = single_winner_solver
        theta = 0.4
        _, p_star = s.bid(theta)
        base = profit_of_payment_deviation(s, theta, p_star)
        grid = np.linspace(0.5 * p_star, 2.0 * p_star, 41)
        best = max(profit_of_payment_deviation(s, theta, float(p)) for p in grid)
        # Equilibrium should be within numerical tolerance of the grid best.
        assert base >= best - 0.05 * max(best, 1e-9) - 1e-6


class TestSocialSurplus:
    def test_social_surplus_sums_terms(self):
        rule = AdditiveScore([1.0])
        cost = QuadraticCost([1.0])
        qs = [np.array([2.0]), np.array([1.0])]
        thetas = [0.5, 0.25]
        expected = (2.0 - 0.5 * 4.0) + (1.0 - 0.25 * 1.0)
        assert social_surplus(qs, thetas, rule, cost) == pytest.approx(expected)

    def test_max_surplus_picks_lowest_types(self):
        rule = AdditiveScore([1.0])
        cost = QuadraticCost([1.0])
        bounds = np.array([[0.0, 10.0]])
        # u0(theta) = 1/(4 theta): lower theta -> more surplus.
        thetas = [0.2, 0.5, 0.9]
        best_1 = max_social_surplus(thetas, rule, cost, bounds, k_winners=1)
        assert best_1 == pytest.approx(1.0 / (4 * 0.2), rel=1e-6)

    def test_pareto_efficiency_of_score_sorting(self, additive_quadratic_solver, rng):
        """Theorem 4: top-K-by-score equals the surplus-maximising selection."""
        s = additive_quadratic_solver
        thetas = s.model.distribution.sample(rng, 10)
        bids = []
        for i, theta in enumerate(np.asarray(thetas)):
            q, p = s.bid(float(theta))
            bids.append(Bid(i, q, p))
        auction = MultiDimensionalProcurementAuction(s.quality_rule, s.model.k_winners)
        outcome = auction.run(bids, rng)
        gap = pareto_gap(
            [w.quality for w in outcome.winners],
            [float(thetas[w.node_id]) for w in outcome.winners],
            np.asarray(thetas, dtype=float),
            s.quality_rule,
            s.cost,
            s.quality_bounds,
            s.model.k_winners,
        )
        # Interpolation error only; the selection itself is efficient.
        assert gap == pytest.approx(0.0, abs=1e-3)

    def test_realized_surplus_uses_outcome(self, additive_quadratic_solver, rng):
        s = additive_quadratic_solver
        thetas = {0: 0.2, 1: 0.6}
        bids = [Bid(i, *s.bid(t)) for i, t in thetas.items()]
        auction = MultiDimensionalProcurementAuction(s.quality_rule, 1)
        outcome = auction.run(bids, rng)
        value = realized_social_surplus(outcome, thetas, s.quality_rule, s.cost)
        w = outcome.winners[0]
        expected = s.quality_rule.value(w.quality) - s.cost.cost(
            w.quality, thetas[w.node_id]
        )
        assert value == pytest.approx(expected)
