"""Public-API contract tests: documented imports exist and are stable.

A downstream user follows README examples; this suite pins the surface
those examples rely on, so accidental renames fail loudly.
"""

import importlib

import pytest


class TestPackageSurface:
    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_subpackages_importable(self):
        for name in ("core", "fl", "mec", "sim", "analysis", "api"):
            mod = importlib.import_module(f"repro.{name}")
            assert mod is not None

    @pytest.mark.parametrize(
        "symbol",
        [
            "Scenario",
            "FMoreEngine",
            "RunResult",
            "Federation",
            "SCHEME_NAMES",
            "Session",
            "RoundEvent",
            "make_session",
            "ExperimentStore",
            "Checkpoint",
            "MetricsFrame",
            "scenario_hash",
            "StoreError",
            "StoreMismatchError",
            "IncompleteRunError",
        ],
    )
    def test_api_exports(self, symbol):
        api = importlib.import_module("repro.api")
        assert hasattr(api, symbol), f"repro.api.{symbol} missing"
        assert symbol in api.__all__

    @pytest.mark.parametrize(
        "symbol",
        [
            "ScoringRule",
            "AdditiveScore",
            "PerfectComplementaryScore",
            "CobbDouglasScore",
            "MultiplicativeScore",
            "LinearCost",
            "QuadraticCost",
            "PowerCost",
            "UniformTheta",
            "PrivateValueModel",
            "EquilibriumSolver",
            "MultiDimensionalProcurementAuction",
            "Bid",
            "TopKSelection",
            "PsiSelection",
            "PerNodePsiSelection",
            "Blacklist",
            "BudgetedAuction",
            "FMoreMechanism",
            "optimal_quality_mix",
            "check_incentive_compatibility",
            "ROUND_POLICIES",
            "RoundPolicy",
            "PolicyAction",
            "SelectionPolicy",
            "GuidancePolicy",
            "AuditBlacklistPolicy",
            "ChurnPolicy",
            "build_policy_pipeline",
            "RankPsiSchedule",
            "simulate_deliveries",
        ],
    )
    def test_core_exports(self, symbol):
        core = importlib.import_module("repro.core")
        assert hasattr(core, symbol), f"repro.core.{symbol} missing"
        assert symbol in core.__all__

    @pytest.mark.parametrize(
        "symbol",
        [
            "Sequential",
            "Dense",
            "Conv2D",
            "LSTM",
            "Embedding",
            "make_generator",
            "heterogeneous_specs",
            "FLClient",
            "FedAvgServer",
            "FederatedTrainer",
            "RandomSelection",
            "FixedSelection",
            "AuctionSelection",
            "build_model",
        ],
    )
    def test_fl_exports(self, symbol):
        fl = importlib.import_module("repro.fl")
        nn = importlib.import_module("repro.fl.nn")
        assert hasattr(fl, symbol) or hasattr(nn, symbol)

    @pytest.mark.parametrize(
        "symbol",
        ["EdgeNode", "ResourceProfile", "SimulatedCluster", "ComputeModel", "Link"],
    )
    def test_mec_exports(self, symbol):
        mec = importlib.import_module("repro.mec")
        assert hasattr(mec, symbol)

    @pytest.mark.parametrize(
        "symbol",
        ["preset", "ExperimentConfig", "run_seeds", "average_histories", "rng_from"],
    )
    def test_sim_exports(self, symbol):
        sim = importlib.import_module("repro.sim")
        assert hasattr(sim, symbol)

    def test_experiment_shims_removed(self):
        """The deprecated builder shims are gone (migrate to repro.api)."""
        with pytest.raises(ModuleNotFoundError):
            importlib.import_module("repro.sim.experiment")
        sim = importlib.import_module("repro.sim")
        for legacy in ("run_comparison", "run_scheme", "build_federation"):
            assert not hasattr(sim, legacy)

    @pytest.mark.parametrize(
        "symbol",
        [
            "headline_metrics",
            "summarize_schemes",
            "verify_all",
            "payment_score_sweep_n",
            "selection_rank_proportions",
        ],
    )
    def test_analysis_exports(self, symbol):
        analysis = importlib.import_module("repro.analysis")
        assert hasattr(analysis, symbol)


class TestDocstrings:
    """Every public module must explain itself (deliverable e)."""

    @pytest.mark.parametrize(
        "module",
        [
            "repro",
            "repro.api.scenario",
            "repro.api.engine",
            "repro.core.registry",
            "repro.core.scoring",
            "repro.core.costs",
            "repro.core.valuation",
            "repro.core.equilibrium",
            "repro.core.odesolvers",
            "repro.core.auction",
            "repro.core.psi",
            "repro.core.guidance",
            "repro.core.properties",
            "repro.core.mechanism",
            "repro.core.blacklist",
            "repro.core.budget",
            "repro.fl.nn.layers",
            "repro.fl.nn.recurrent",
            "repro.fl.nn.losses",
            "repro.fl.nn.optimizers",
            "repro.fl.nn.model",
            "repro.fl.datasets",
            "repro.fl.partition",
            "repro.fl.client",
            "repro.fl.server",
            "repro.fl.selection",
            "repro.fl.trainer",
            "repro.fl.metrics",
            "repro.mec.resources",
            "repro.mec.node",
            "repro.mec.network",
            "repro.mec.timing",
            "repro.mec.cluster",
            "repro.api.store",
            "repro.api.metrics",
            "repro.fl.serialize",
            "repro.sim.config",
            "repro.sim.cluster_experiment",
            "repro.sim.runner",
            "repro.sim.reporting",
            "repro.analysis.equilibrium_analysis",
            "repro.analysis.convergence",
            "repro.analysis.theory_report",
        ],
    )
    def test_module_docstring(self, module):
        mod = importlib.import_module(module)
        assert mod.__doc__ and len(mod.__doc__.strip()) > 40

    def test_key_classes_documented(self):
        from repro.core import EquilibriumSolver, MultiDimensionalProcurementAuction
        from repro.fl import FederatedTrainer
        from repro.mec import EdgeNode

        for cls in (
            EquilibriumSolver,
            MultiDimensionalProcurementAuction,
            FederatedTrainer,
            EdgeNode,
        ):
            assert cls.__doc__ and len(cls.__doc__.strip()) > 40
