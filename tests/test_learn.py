"""Learned-bidder subsystem: ``BID_LEARNERS``, the trainer, artifacts.

The contracts under test:

* **Determinism** — training is a pure function of ``(scenario, scheme,
  env_seed, train_seed)``: re-running produces identical curves and
  weights, for both registered learners.
* **Bitwise resume** — a training run checkpointed through the store and
  resumed (in-process or in a *fresh process* via the CLI) continues
  bitwise-identically to a never-interrupted run; the same holds for a
  federated run whose population deploys the ``learned`` policy.
* **Artifacts** — save/load round-trips the learner exactly; a digest
  mismatch refuses to deploy.
* **Env quality-of-life** — ``sample_action``, the ``rounds_waited`` /
  ``last_payoff`` observation keys, and validation errors (not silent
  clamps) for malformed actions.
* **The incentive report** — ``learned_episodes > 0`` trains the
  adversary and emits the ``learned_deviation`` row.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.api import ExperimentStore, FMoreEngine, Scenario, StoreError
from repro.analysis import run_incentive_sweep
from repro.strategic import AuctionEnv, BID_POLICIES
from repro.strategic.learn import (
    BID_LEARNERS,
    DEFAULT_MARKUPS,
    BidLearnerTrainer,
    BidObservation,
    LearnedBidding,
    N_FEATURES,
    PolicyGradientLearner,
    QTableLearner,
    artifact_digest,
    evaluate,
    features,
    greedy_controller,
    jitter_controller,
    load_policy_artifact,
    save_policy_artifact,
)
from repro.sim.rng import rng_from

REPO_ROOT = Path(__file__).resolve().parent.parent


def _scenario(**overrides):
    defaults = dict(
        schemes=("FMore",),
        seeds=(0,),
        n_clients=10,
        k_winners=3,
        n_rounds=2,
        test_per_class=8,
        size_range=(60, 240),
        grid_size=17,
        model_width=0.12,
        batch_size=16,
    )
    return Scenario.from_preset(
        "smoke", "mnist_o", **{**defaults, **overrides}
    )


def _ob(**overrides):
    defaults = dict(
        theta=0.4,
        equilibrium_payment=2.0,
        last_threshold=None,
        rounds_waited=0,
        last_payoff=0.0,
    )
    return BidObservation(**{**defaults, **overrides})


@pytest.fixture(scope="module")
def shared_engine():
    return FMoreEngine()


# ----------------------------------------------------------------------
# Learners (no env needed)
# ----------------------------------------------------------------------
class TestLearners:
    def test_family_is_registered(self):
        assert set(BID_LEARNERS.names()) >= {"q_table", "pg_mlp"}

    @pytest.mark.parametrize("name", ["q_table", "pg_mlp"])
    def test_create_from_registry(self, name):
        learner = BID_LEARNERS.create(name)
        assert learner.name == name
        assert learner.markups == list(DEFAULT_MARKUPS)

    def test_markup_menu_validation(self):
        with pytest.raises(ValueError):
            QTableLearner(markups=())
        with pytest.raises(ValueError):
            QTableLearner(markups=(0.0, -1.5))
        with pytest.raises(ValueError):
            PolicyGradientLearner(markups=(0.1, 0.1))

    @pytest.mark.parametrize("name", ["q_table", "pg_mlp"])
    def test_untrained_learner_is_truthful(self, name):
        # Menu index 0 is markup 0.0; a fresh learner must tie-break there.
        learner = BID_LEARNERS.create(name)
        assert learner.markups[0] == 0.0
        assert learner.greedy(_ob()) == 0
        assert learner.greedy(_ob(rounds_waited=3, last_payoff=-0.5)) == 0

    def test_q_table_update_math(self):
        learner = QTableLearner(lr=0.5, discount=0.0)
        ob = _ob()
        idx = learner._index(ob)
        learner.update(ob, 2, 1.0, None, True)
        assert learner.q[idx, 2] == pytest.approx(0.5)
        learner.update(ob, 2, 1.0, None, True)
        assert learner.q[idx, 2] == pytest.approx(0.75)
        # Learnt preference shows up greedily.
        assert learner.greedy(ob) == 2

    def test_q_table_bootstraps_from_next_state(self):
        learner = QTableLearner(lr=1.0, discount=0.5)
        nxt = _ob(rounds_waited=2)
        learner.update(nxt, 1, 4.0, None, True)  # q[nxt, 1] = 4
        ob = _ob()
        learner.update(ob, 0, 1.0, nxt, False)
        assert learner.q[learner._index(ob), 0] == pytest.approx(1.0 + 0.5 * 4.0)

    def test_act_is_deterministic_given_stream(self):
        for name in ("q_table", "pg_mlp"):
            a = BID_LEARNERS.create(name)
            b = BID_LEARNERS.create(name)
            ra, rb = rng_from(7, "t"), rng_from(7, "t")
            acts_a = [a.act(_ob(rounds_waited=i % 3), ra) for i in range(20)]
            acts_b = [b.act(_ob(rounds_waited=i % 3), rb) for i in range(20)]
            assert acts_a == acts_b

    def test_epsilon_decays_and_round_trips(self):
        learner = QTableLearner(epsilon=0.5, epsilon_decay=0.5, epsilon_min=0.1)
        learner.finish_episode()
        assert learner.epsilon == pytest.approx(0.25)
        clone = QTableLearner(epsilon=0.5, epsilon_decay=0.5, epsilon_min=0.1)
        clone.load_state(learner.state_dict())
        assert clone.epsilon == pytest.approx(0.25)
        with pytest.raises(ValueError, match="unknown q_table state"):
            clone.load_state({"nonsense": 1})

    def test_pg_mlp_learns_from_reinforce(self):
        learner = PolicyGradientLearner(lr=0.5, init_seed=3)
        ob = _ob()
        before = learner._probs(ob).copy()
        rng = rng_from(0, "pg")
        learner.begin_episode()
        # Only action 3 pays; everything else loses.
        for _ in range(30):
            action = learner.act(ob, rng)
            learner.update(ob, action, 1.0 if action == 3 else -1.0, ob, False)
        learner.finish_episode()
        after = learner._probs(ob)
        assert after[3] > before[3]
        assert not learner._actions  # buffers cleared at the boundary

    def test_features_are_bounded(self):
        vec = features(
            _ob(last_threshold=1e9, last_payoff=-1e9, rounds_waited=100)
        )
        assert vec.shape == (N_FEATURES,)
        assert np.all(np.abs(vec) <= max(1.0, abs(vec[0])))

    @pytest.mark.parametrize("name", ["q_table", "pg_mlp"])
    def test_spec_weights_state_rebuild_identically(self, name):
        learner = BID_LEARNERS.create(name)
        rng = rng_from(1, "fill")
        for i in range(12):
            ob = _ob(rounds_waited=i % 4, last_payoff=float(i % 2))
            learner.update(ob, learner.act(ob, rng), float(i), ob, False)
        learner.finish_episode()
        clone = BID_LEARNERS.create(learner.spec())
        clone.load_state(learner.state_dict())
        clone.set_weights(learner.weights())
        for wa, wb in zip(learner.weights(), clone.weights()):
            assert np.array_equal(wa, wb)
        for i in range(8):
            ob = _ob(theta=0.1 * i, rounds_waited=i % 5)
            assert learner.greedy(ob) == clone.greedy(ob)


# ----------------------------------------------------------------------
# Artifacts and the `learned` bid policy
# ----------------------------------------------------------------------
class TestArtifacts:
    def _trained(self):
        learner = QTableLearner()
        rng = rng_from(2, "fill")
        for i in range(10):
            ob = _ob(rounds_waited=i % 3)
            learner.update(ob, learner.act(ob, rng), float(i % 4), ob, False)
        learner.finish_episode()
        return learner

    def test_round_trip_and_digest(self, tmp_path):
        learner = self._trained()
        path = tmp_path / "policy.json"
        digest = save_policy_artifact(path, learner)
        assert digest == artifact_digest(path)
        loaded = load_policy_artifact(path)
        assert isinstance(loaded, QTableLearner)
        assert np.array_equal(loaded.q, learner.q)
        assert loaded.epsilon == learner.epsilon
        # Deterministic file content: saving again byte-matches.
        assert save_policy_artifact(tmp_path / "again.json", learner) == digest

    def test_learned_policy_is_registered_and_pins_digest(self, tmp_path):
        path = tmp_path / "policy.json"
        digest = save_policy_artifact(path, self._trained())
        policy = BID_POLICIES.create(
            {"name": "learned", "artifact": str(path), "digest": digest}
        )
        assert isinstance(policy, LearnedBidding)
        assert policy.digest == digest
        with pytest.raises(ValueError, match="digest"):
            BID_POLICIES.create(
                {"name": "learned", "artifact": str(path), "digest": "0" * 64}
            )

    def test_unreadable_artifact_fails_loudly(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises((ValueError, OSError)):
            BID_POLICIES.create({"name": "learned", "artifact": str(missing)})
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(ValueError):
            load_policy_artifact(bad)

    def test_learned_policy_state_round_trip(self, tmp_path):
        path = tmp_path / "policy.json"
        save_policy_artifact(path, self._trained())
        policy = LearnedBidding(path)
        policy._last_threshold = 3.25
        policy._waits = {4: 2}
        policy._last_payoffs = {4: -0.5}
        clone = LearnedBidding(path)
        clone.load_state(json.loads(json.dumps(policy.state_dict())))
        assert clone._last_threshold == 3.25
        assert clone._waits == {4: 2}
        assert clone._last_payoffs == {4: -0.5}
        with pytest.raises(ValueError, match="unknown learned state"):
            clone.load_state({"pending": {}})


# ----------------------------------------------------------------------
# Training loop: determinism and bitwise resume
# ----------------------------------------------------------------------
class TestTrainer:
    @pytest.mark.parametrize("name", ["q_table", "pg_mlp"])
    def test_training_is_deterministic(self, name, shared_engine):
        scenario = _scenario()
        runs = []
        for _ in range(2):
            trainer = BidLearnerTrainer(
                scenario, name, train_seed=3, engine=shared_engine
            )
            curve = trainer.train(3)
            runs.append((curve, trainer.learner))
        (curve_a, la), (curve_b, lb) = runs
        assert curve_a == curve_b
        assert la.state_dict() == lb.state_dict()
        for wa, wb in zip(la.weights(), lb.weights()):
            assert np.array_equal(wa, wb)

    def test_resume_is_bitwise_identical(self, tmp_path, shared_engine):
        scenario = _scenario()
        store = ExperimentStore(tmp_path / "store", keep_last_n=2)
        first = BidLearnerTrainer(
            scenario, "q_table", store=store, checkpoint_every=2,
            engine=shared_engine,
        )
        first.train(3)
        resumed = BidLearnerTrainer(
            scenario, "q_table", store=store, checkpoint_every=2,
            engine=shared_engine,
        )
        curve = resumed.train(6, resume=True)
        straight = BidLearnerTrainer(
            scenario, "q_table", engine=shared_engine
        )
        reference = straight.train(6)
        assert curve == reference
        assert resumed.learner.state_dict() == straight.learner.state_dict()
        for wa, wb in zip(
            resumed.learner.weights(), straight.learner.weights()
        ):
            assert np.array_equal(wa, wb)

    def test_resume_from_an_earlier_retained_episode(
        self, tmp_path, shared_engine
    ):
        scenario = _scenario()
        store = ExperimentStore(tmp_path / "store", keep_last_n=3)
        trainer = BidLearnerTrainer(
            scenario, "q_table", store=store, checkpoint_every=1,
            engine=shared_engine,
        )
        trainer.train(3)
        rounds = store.checkpoint_rounds(scenario, "learn_q_table", 0)
        assert rounds == [1, 2, 3]
        # Restore episode 1 explicitly and replay: must match the straight run.
        early = store.load_checkpoint(
            scenario, "learn_q_table", 0, round_index=1
        )
        replay = BidLearnerTrainer(
            scenario, "q_table", engine=shared_engine
        )
        replay.restore(early)
        assert replay.episodes_done == 1
        curve = replay.train(3)
        assert curve == trainer.curve

    def test_restore_validates_the_binding(self, tmp_path, shared_engine):
        scenario = _scenario()
        store = ExperimentStore(tmp_path / "store")
        trainer = BidLearnerTrainer(
            scenario, "q_table", store=store, engine=shared_engine
        )
        trainer.train(1)
        checkpoint = store.latest_checkpoint(scenario, "learn_q_table", 0)
        assert checkpoint is not None
        with pytest.raises(StoreError, match="cell scheme"):
            BidLearnerTrainer(
                scenario, "pg_mlp", engine=shared_engine
            ).restore(checkpoint)
        with pytest.raises(StoreError, match="env cell"):
            BidLearnerTrainer(
                scenario, "q_table", env_seed=9, engine=shared_engine
            ).restore(checkpoint)
        with pytest.raises(StoreError, match="train seed"):
            BidLearnerTrainer(
                scenario, "q_table", train_seed=9, engine=shared_engine
            ).restore(checkpoint)

    def test_latest_checkpoint_flat_and_retained(self, tmp_path, shared_engine):
        scenario = _scenario()
        flat = ExperimentStore(tmp_path / "flat")  # default: one, overwritten
        assert flat.latest_checkpoint(scenario, "learn_q_table", 0) is None
        trainer = BidLearnerTrainer(
            scenario, "q_table", store=flat, engine=shared_engine
        )
        trainer.train(2)
        checkpoint = flat.latest_checkpoint(scenario, "learn_q_table", 0)
        assert checkpoint.round_index == 2
        retained = ExperimentStore(tmp_path / "kept", keep_last_n=2)
        trainer2 = BidLearnerTrainer(
            scenario, "q_table", store=retained, checkpoint_every=1,
            engine=shared_engine,
        )
        trainer2.train(3)
        newest = retained.latest_checkpoint(scenario, "learn_q_table", 0)
        assert newest.round_index == 3

    def test_evaluate_replays_identically(self, shared_engine):
        scenario = _scenario()
        truthful = evaluate(
            scenario, lambda ob: ob.equilibrium_payment, episodes=2,
            engine=shared_engine,
        )
        assert truthful[0] == truthful[1]  # same cell, same bids, same payoff
        jitter = jitter_controller(payment_scale=0.1, seed=0)
        jittered = evaluate(
            scenario, jitter, episodes=2, engine=shared_engine
        )
        assert len(jittered) == 2

    def test_greedy_controller_matches_deployed_policy(
        self, tmp_path, shared_engine
    ):
        scenario = _scenario()
        trainer = BidLearnerTrainer(
            scenario, "q_table", engine=shared_engine
        )
        trainer.train(3)
        controller = greedy_controller(trainer.learner)
        ob = _ob()
        expected = ob.equilibrium_payment * (
            1.0 + trainer.learner.markups[trainer.learner.greedy(ob)]
        )
        assert controller(ob) == pytest.approx(expected)


# ----------------------------------------------------------------------
# Fresh-process resume (the CLI path, satellite: process round-trip)
# ----------------------------------------------------------------------
class TestFreshProcessResume:
    CLI = (
        "--preset", "smoke",
        "--set", "n_clients=10", "--set", "k_winners=3",
        "--set", "n_rounds=2", "--set", "test_per_class=8",
        "--set", "size_range=60,240", "--set", "grid_size=17",
        "--set", "model_width=0.12", "--set", "batch_size=16",
        "--seed", "0",
    )

    def _run(self, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(REPO_ROOT / "src")
            + (os.pathsep + env["PYTHONPATH"] if "PYTHONPATH" in env else "")
        )
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "train-bidder", *self.CLI, *args],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stderr + proc.stdout
        return proc.stdout

    def test_resume_in_a_fresh_process_is_bitwise(self, tmp_path):
        store_a = tmp_path / "interrupted"
        art_a = tmp_path / "a.json"
        # Train 2 episodes in one process, then resume to 4 in another.
        self._run("--store", str(store_a), "--episodes", "2",
                  "--checkpoint-every", "1")
        self._run("--store", str(store_a), "--episodes", "4", "--resume",
                  "--checkpoint-every", "1", "--artifact", str(art_a))
        # Uninterrupted 4-episode run in a third process.
        store_b = tmp_path / "straight"
        art_b = tmp_path / "b.json"
        self._run("--store", str(store_b), "--episodes", "4",
                  "--checkpoint-every", "1", "--artifact", str(art_b))
        assert art_a.read_bytes() == art_b.read_bytes()
        # The final checkpoint state files byte-match too.
        state_a = sorted(store_a.rglob("round-4/state.json"))
        state_b = sorted(store_b.rglob("round-4/state.json"))
        assert state_a and state_b
        assert state_a[0].read_bytes() == state_b[0].read_bytes()


# ----------------------------------------------------------------------
# Deployment: learned mixes inside federated runs
# ----------------------------------------------------------------------
class TestLearnedDeployment:
    @pytest.fixture(scope="class")
    def deployed(self, tmp_path_factory):
        tmp = tmp_path_factory.mktemp("learned-mix")
        engine = FMoreEngine()
        scenario = _scenario(n_rounds=3)
        trainer = BidLearnerTrainer(scenario, "q_table", engine=engine)
        trainer.train(4)
        artifact = tmp / "policy.json"
        digest = trainer.save_artifact(artifact)
        mixed = scenario.with_(
            bidding={
                "mix": [
                    {
                        "name": "learned",
                        "artifact": str(artifact),
                        "digest": digest,
                        "fraction": 0.3,
                        "label": "adaptive",
                    }
                ]
            }
        )
        return engine, mixed, engine.run(mixed)

    def test_payoff_columns_and_determinism(self, deployed):
        engine, mixed, result = deployed
        frame = result.metrics()
        assert frame.column("payoff_adaptive_mean")
        assert FMoreEngine().run(mixed).histories == result.histories

    def test_process_executor_matches_serial(self, deployed):
        _, mixed, result = deployed
        plan = mixed.with_(
            execution={"executor": "process", "max_workers": 2}
        )
        assert FMoreEngine().run(plan).histories == result.histories

    def test_checkpointed_run_resumes_bitwise(self, tmp_path, deployed):
        engine, mixed, result = deployed
        session = engine.session(mixed, "FMore", 0)
        next(session)
        checkpoint = session.snapshot()
        entries = {e["label"]: e for e in checkpoint.bid_policy_states}
        assert "adaptive" in entries
        assert entries["adaptive"]["name"] == "learned"
        store = ExperimentStore(tmp_path)
        store.save_checkpoint(checkpoint)
        loaded = store.load_checkpoint(mixed, "FMore", 0)
        resumed = FMoreEngine().resume(loaded).run()
        assert resumed == result.history("FMore")


# ----------------------------------------------------------------------
# Env quality-of-life satellites
# ----------------------------------------------------------------------
class TestEnvQoL:
    @pytest.fixture()
    def env(self, shared_engine):
        return AuctionEnv(_scenario(n_rounds=3), seed=0, engine=shared_engine)

    def test_observation_has_wait_and_payoff_keys(self, env):
        obs = env.reset()
        assert obs["rounds_waited"] == 0
        assert obs["last_payoff"] == 0.0
        obs, reward, done, info = env.step(None)  # truthful bid
        if not done:
            if info["won"]:
                assert obs["rounds_waited"] == 0
                assert obs["last_payoff"] == pytest.approx(reward)
            else:
                assert obs["rounds_waited"] == 1
                assert obs["last_payoff"] == 0.0

    def test_losing_bids_accumulate_waits(self, env):
        obs = env.reset()
        eq = obs["equilibrium_payment"]
        for expected in (1, 2):
            obs, _, done, info = env.step(eq * 1000.0)  # absurd ask: loses
            assert not info["won"]
            if not done:
                assert obs["rounds_waited"] == expected

    def test_sample_action_is_seeded_and_feasible(self, shared_engine):
        scenario = _scenario(n_rounds=3)
        a = AuctionEnv(scenario, seed=0, engine=shared_engine)
        b = AuctionEnv(scenario, seed=0, engine=shared_engine)
        a.reset()
        b.reset()
        draws_a = [a.sample_action() for _ in range(3)]
        draws_b = [b.sample_action() for _ in range(3)]
        for da, db in zip(draws_a, draws_b):
            assert np.array_equal(da, db)
        # The sampled action is accepted by step() as-is.
        _, _, _, info = a.step(draws_a[0])
        assert isinstance(info["won"], bool)
        # An explicit generator overrides the env stream.
        c = AuctionEnv(scenario, seed=0, engine=shared_engine)
        c.reset()
        custom = c.sample_action(rng_from(5, "mine"))
        assert not np.array_equal(custom, draws_a[0])

    def test_sample_action_requires_reset(self, shared_engine):
        env = AuctionEnv(_scenario(), seed=0, engine=shared_engine)
        with pytest.raises(RuntimeError, match="reset"):
            env.sample_action()

    def test_out_of_box_quality_vector_raises(self, env):
        obs = env.reset()
        m = len(obs["equilibrium_quality"])
        action = np.concatenate(
            [np.full(m, 1e9), [obs["equilibrium_payment"]]]
        )
        with pytest.raises(ValueError, match="quality box"):
            env.step(action)
        with pytest.raises(ValueError, match="finite"):
            env.step(
                np.concatenate([np.full(m, np.nan), [obs["equilibrium_payment"]]])
            )

    def test_bad_payments_raise(self, env):
        env.reset()
        with pytest.raises(ValueError, match="payment"):
            env.step(-1.0)
        with pytest.raises(ValueError, match="payment"):
            env.step(0.0)
        with pytest.raises(ValueError, match="payment"):
            env.step(float("inf"))

    def test_in_box_qualities_still_step(self, env):
        obs = env.reset()
        action = np.concatenate(
            [obs["equilibrium_quality"], [obs["equilibrium_payment"]]]
        )
        _, _, done, info = env.step(action)
        assert isinstance(info["won"], bool)


# ----------------------------------------------------------------------
# Incentive report integration
# ----------------------------------------------------------------------
class TestLearnedIncentiveRow:
    def test_sweep_emits_learned_deviation_row(self, tmp_path, shared_engine):
        scenario = _scenario()
        store = ExperimentStore(tmp_path / "store")
        report = run_incentive_sweep(
            scenario,
            store=store,
            deviations=[{"name": "fixed_markup", "markup": 0.15}],
            fraction=0.2,
            engine=shared_engine,
            learned_episodes=2,
        )
        rows = {r.policy for r in report.rows}
        assert rows == {"fixed_markup", "learned_deviation"}
        assert "learned_deviation" in report.to_markdown()
        # The trainer checkpointed into the store and the artifact landed
        # under learners/ — a re-run resumes instead of retraining.
        assert store.checkpoint_rounds(scenario, "learn_q_table", 0) == [2]
        assert list((store.root / "learners").rglob("*.json"))
        again = run_incentive_sweep(
            scenario,
            store=store,
            deviations=[{"name": "fixed_markup", "markup": 0.15}],
            fraction=0.2,
            engine=shared_engine,
            learned_episodes=2,
        )
        learned = [r for r in report.rows if r.policy == "learned_deviation"]
        learned_again = [
            r for r in again.rows if r.policy == "learned_deviation"
        ]
        assert learned[0].deviant_payoff == learned_again[0].deviant_payoff

    def test_sweep_without_store_uses_a_temp_artifact(self, shared_engine):
        report = run_incentive_sweep(
            _scenario(),
            deviations=[],
            fraction=0.2,
            engine=shared_engine,
            learned_episodes=1,
        )
        assert [r.policy for r in report.rows] == ["learned_deviation"]
