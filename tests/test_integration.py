"""Integration tests: the full FMore pipeline end to end at smoke scale.

These assert the paper's *qualitative* claims on tiny instances:
ordering of schemes, auction bookkeeping flowing into training records,
psi-FMore interpolating between FMore and RandFL, and the cluster timing
pipeline producing monotone cumulative clocks.
"""

import numpy as np
import pytest

from repro.analysis import headline_metrics, selection_rank_proportions
from repro.api import FMoreEngine, Scenario, build_federation, run_scheme
from repro.sim import preset
from repro.sim.cluster_experiment import ClusterConfig, run_cluster_comparison


@pytest.fixture(scope="module")
def smoke_results():
    cfg = preset("smoke", "mnist_o").with_(n_rounds=6)
    scenario = Scenario.from_config(cfg, schemes=("FMore", "RandFL", "FixFL"), seeds=(3,))
    return cfg, FMoreEngine().run(scenario).comparison()


class TestEndToEnd:
    def test_all_schemes_complete(self, smoke_results):
        cfg, results = smoke_results
        for scheme, history in results.items():
            assert len(history.records) == cfg.n_rounds
            assert all(0.0 <= a <= 1.0 for a in history.accuracies)

    def test_fmore_pays_others_do_not(self, smoke_results):
        _, results = smoke_results
        assert results["FMore"].total_payment > 0.0
        assert results["RandFL"].total_payment == 0.0
        assert results["FixFL"].total_payment == 0.0

    def test_fmore_records_scores_and_ranks(self, smoke_results):
        _, results = smoke_results
        for record in results["FMore"].records:
            assert record.scores
            assert record.winner_ranks
            assert record.all_scores
            # Winners carry the top scores of the round.
            assert max(record.scores.values()) <= max(record.all_scores) + 1e-12

    def test_winner_count_is_k(self, smoke_results):
        cfg, results = smoke_results
        for record in results["FMore"].records:
            assert len(record.winner_ids) == cfg.k_winners

    def test_fmore_selects_higher_quality_nodes(self, smoke_results):
        """The selection skew the paper's Fig 8 shows: FMore's winners hold
        more data x diversity than the population average."""
        cfg, results = smoke_results
        federation = build_federation(Scenario.from_config(cfg), 3)
        value = {
            c.client_id: c.size * max(c.category_proportion, 0.05)
            for c in federation.clients_data
        }
        population_mean = np.mean(list(value.values()))
        fmore_winners = [
            value[w] for r in results["FMore"].records for w in r.winner_ids
        ]
        assert np.mean(fmore_winners) > population_mean

    def test_histories_share_initial_conditions(self):
        """Same (cfg, seed): schemes must start from identical weights."""
        scenario = Scenario.from_config(preset("smoke", "mnist_o").with_(n_rounds=1))
        federation = build_federation(scenario, 0)
        h1 = run_scheme(scenario, "RandFL", 0, federation=federation)
        h2 = run_scheme(scenario, "FixFL", 0, federation=federation)
        assert federation.initial_weights  # populated by the first run
        assert len(h1.records) == len(h2.records) == 1

    def test_reproducible_given_seed(self):
        scenario = Scenario.from_config(preset("smoke", "mnist_o").with_(n_rounds=2))
        a = run_scheme(scenario, "FMore", seed=11)
        b = run_scheme(scenario, "FMore", seed=11)
        assert a.accuracies == b.accuracies
        assert [r.winner_ids for r in a.records] == [r.winner_ids for r in b.records]

    def test_headline_metrics_computable(self, smoke_results):
        _, results = smoke_results
        m = headline_metrics(results, target_accuracy=0.2)
        assert m.fmore_final_accuracy >= 0.0


class TestPsiFMore:
    def test_psi_spreads_winners(self):
        cfg = preset("smoke", "mnist_o").with_(n_rounds=6)
        low_psi = cfg.with_(auction=cfg.auction.__class__(psi=0.3, grid_size=65))
        h_psi = run_scheme(Scenario.from_config(low_psi), "PsiFMore", seed=5)
        h_top = run_scheme(Scenario.from_config(cfg), "FMore", seed=5)
        distinct_psi = len(h_psi.winner_counts())
        distinct_top = len(h_top.winner_counts())
        assert distinct_psi >= distinct_top

    def test_rank_proportions_shift_with_psi(self):
        cfg = preset("smoke", "mnist_o").with_(n_rounds=5, n_clients=12, k_winners=3)
        hi = cfg.with_(auction=cfg.auction.__class__(psi=0.95, grid_size=65))
        lo = cfg.with_(auction=cfg.auction.__class__(psi=0.25, grid_size=65))
        h_hi = run_scheme(Scenario.from_config(hi), "PsiFMore", seed=7)
        h_lo = run_scheme(Scenario.from_config(lo), "PsiFMore", seed=7)
        top3_hi = selection_rank_proportions(h_hi, rank_cutoffs=(3,))[3]
        top3_lo = selection_rank_proportions(h_lo, rank_cutoffs=(3,))[3]
        assert top3_hi >= top3_lo


class TestClusterPipeline:
    def test_cluster_round_times_positive_and_cumulative(self):
        cfg = ClusterConfig(
            n_nodes=8, k_winners=3, n_rounds=3, size_range=(40, 150),
            test_per_class=5, model_width=0.12,
        )
        results = run_cluster_comparison(cfg, ("FMore", "RandFL"), seed=1)
        for history in results.values():
            times = history.cumulative_seconds
            assert all(t > 0 for t in times)
            assert all(b >= a for a, b in zip(times, times[1:]))

    def test_fmore_declares_training_sizes(self):
        cfg = ClusterConfig(
            n_nodes=8, k_winners=3, n_rounds=2, size_range=(40, 150),
            test_per_class=5, model_width=0.12,
        )
        results = run_cluster_comparison(cfg, ("FMore",), seed=1)
        for record in results["FMore"].records:
            assert record.scores


class TestAbstention:
    def test_unprofitable_nodes_abstain(self):
        """If the cost scale dwarfs the score scale, nobody should bid at a
        loss — the auction may then select fewer than K nodes, but every
        submitted bid stays individually rational."""
        from repro.core.costs import LinearCost
        from repro.core.equilibrium import EquilibriumSolver
        from repro.core.scoring import MultiplicativeScore
        from repro.core.valuation import PrivateValueModel, UniformTheta
        from repro.mec.node import EdgeNode
        from repro.mec.resources import ResourceProfile

        rule = MultiplicativeScore(2, 0.001)  # valuation ~ 0
        cost = LinearCost([50.0, 50.0])
        model = PrivateValueModel(UniformTheta(0.5, 1.0), 10, 2)
        solver = EquilibriumSolver(rule, cost, model, [[0.01, 5], [0.05, 1]], grid_size=65)
        node = EdgeNode(0, 0.9, solver, ResourceProfile(3000, 0.9), min_margin=1e-6)
        rng = np.random.default_rng(0)
        bid = node.make_bid(1, rng)
        if bid is not None:
            assert bid.payment - solver.cost.cost(bid.quality, 0.9) >= -1e-9
