"""Tests for theta re-estimation and the client step cap added for drift."""

import numpy as np
import pytest

from repro.core.costs import LinearCost
from repro.core.equilibrium import EquilibriumSolver
from repro.core.scoring import MultiplicativeScore
from repro.core.valuation import PrivateValueModel, UniformTheta
from repro.fl.client import FLClient
from repro.fl.datasets import make_generator
from repro.fl.nn import Dense, ReLU, SGD, Sequential
from repro.fl.partition import ClientData
from repro.mec.node import EdgeNode
from repro.mec.resources import ResourceProfile, StaticDynamics


@pytest.fixture(scope="module")
def solver():
    rule = MultiplicativeScore(2, 25.0)
    cost = LinearCost([4.0, 2.0])
    model = PrivateValueModel(UniformTheta(0.1, 1.0), 20, 5)
    return EquilibriumSolver(rule, cost, model, [[0.01, 5.0], [0.05, 1.0]], grid_size=65)


class TestThetaJitter:
    def test_zero_jitter_is_deterministic(self, solver):
        node = EdgeNode(0, 0.5, solver, ResourceProfile(1000, 0.8), StaticDynamics())
        rng = np.random.default_rng(0)
        assert node.effective_theta(rng) == 0.5

    def test_jitter_stays_in_support(self, solver):
        node = EdgeNode(
            0, 0.95, solver, ResourceProfile(1000, 0.8), StaticDynamics(),
            theta_jitter=0.5,
        )
        rng = np.random.default_rng(1)
        draws = [node.effective_theta(rng) for _ in range(200)]
        assert min(draws) >= 0.1 - 1e-12
        assert max(draws) <= 1.0 + 1e-12

    def test_jitter_varies_bids(self, solver):
        node = EdgeNode(
            0, 0.5, solver, ResourceProfile(1000, 0.8), StaticDynamics(),
            theta_jitter=0.3,
        )
        rng = np.random.default_rng(2)
        payments = {round(node.make_bid(t, rng).payment, 8) for t in range(10)}
        assert len(payments) > 1

    def test_jittered_bids_remain_ir(self, solver):
        node = EdgeNode(
            0, 0.4, solver, ResourceProfile(2000, 0.9), StaticDynamics(),
            theta_jitter=0.4,
        )
        rng = np.random.default_rng(3)
        for t in range(20):
            bid = node.make_bid(t, rng)
            if bid is None:
                continue
            # Profit under the *re-estimated* cost parameter is the one the
            # node optimises; it must be non-negative under some theta in
            # the jitter window — at minimum the bid covers the support-low
            # cost scaled appropriately.  We assert the weaker invariant
            # that payment covers the best-case (lowest) cost.
            assert bid.payment >= solver.cost.cost(bid.quality, 0.1) - 1e-9

    def test_invalid_jitter(self, solver):
        with pytest.raises(ValueError):
            EdgeNode(0, 0.5, solver, ResourceProfile(100, 0.5), theta_jitter=1.5)


class TestClientStepCap:
    def make_client(self, rng, n, cap):
        gen = make_generator("mnist_o", seed=0)
        x, y = gen.sample_mixed({0: n // 2, 1: n - n // 2}, rng)
        x = x.reshape(x.shape[0], -1)[:, :8]
        data = ClientData(0, x, y, 10)
        return FLClient(data, batch_size=8, max_batches_per_round=cap)

    def model(self, rng):
        return Sequential(
            lambda: [Dense(8), ReLU(), Dense(10)], (8,), optimizer=SGD(0.05), rng=rng
        )

    def test_cap_limits_steps_but_reports_declared_size(self, rng):
        client = self.make_client(rng, 200, cap=3)
        model = self.model(rng)
        update = client.train(model, model.get_weights(), rng)
        # FedAvg weight (Eq. 3 D_i) still reflects the full declared data.
        assert update.n_samples == 200

    def test_no_cap_trains_everything(self, rng):
        client = self.make_client(rng, 100, cap=None)
        model = self.model(rng)
        update = client.train(model, model.get_weights(), rng)
        assert update.n_samples == 100

    def test_cap_below_data_size_changes_weights(self, rng):
        client = self.make_client(rng, 160, cap=2)
        model = self.model(rng)
        before = model.get_weights()
        update = client.train(model, before, rng)
        assert any(not np.allclose(a, b) for a, b in zip(update.weights, before))

    def test_invalid_cap(self, rng):
        with pytest.raises(ValueError):
            self.make_client(rng, 50, cap=0)
