"""Shared fixtures: small, fast auction environments and datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    AdditiveScore,
    EquilibriumSolver,
    LinearCost,
    MultiplicativeScore,
    PrivateValueModel,
    QuadraticCost,
    UniformTheta,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def nn_backend(request) -> str:
    """Activate one registered NN array backend for the duration of a test.

    Parameterised over every ``NN_BACKENDS`` entry (see
    ``pytest_generate_tests``); entries whose dependency is missing (the
    optional ``numba``) skip rather than fail, so the battery pins each
    backend that can actually run here.
    """
    from repro.fl.nn.backends import backend_available, use_backend

    name = request.param
    if not backend_available(name):
        pytest.skip(f"nn backend {name!r} unavailable in this environment")
    with use_backend(name):
        yield name


def pytest_generate_tests(metafunc):
    if "nn_backend" in metafunc.fixturenames:
        from repro.core.registry import NN_BACKENDS
        from repro.fl.nn import backends as _backends  # noqa: F401 - registers

        metafunc.parametrize("nn_backend", sorted(NN_BACKENDS.names()), indirect=True)


@pytest.fixture(scope="session")
def additive_quadratic_solver() -> EquilibriumSolver:
    """Additive score + quadratic cost: interior optima, closed-form qs."""
    rule = AdditiveScore([0.5, 0.5])
    cost = QuadraticCost([1.0, 1.0])
    model = PrivateValueModel(UniformTheta(0.1, 1.0), n_nodes=10, k_winners=3)
    return EquilibriumSolver(rule, cost, model, [[0.0, 10.0], [0.0, 1.0]], grid_size=129)


@pytest.fixture(scope="session")
def single_winner_solver() -> EquilibriumSolver:
    """K=1 environment where Che's Theorem 2 closed form applies exactly."""
    rule = AdditiveScore([0.5, 0.5])
    cost = QuadraticCost([1.0, 1.0])
    model = PrivateValueModel(UniformTheta(0.1, 1.0), n_nodes=8, k_winners=1)
    return EquilibriumSolver(rule, cost, model, [[0.0, 10.0], [0.0, 1.0]], grid_size=257)


@pytest.fixture(scope="session")
def multiplicative_solver() -> EquilibriumSolver:
    """The simulator's environment: s = 25*q1*q2, linear cost."""
    rule = MultiplicativeScore(n_dimensions=2, scale=25.0)
    cost = LinearCost([4.0, 2.0])
    model = PrivateValueModel(UniformTheta(0.1, 1.0), n_nodes=30, k_winners=6)
    return EquilibriumSolver(rule, cost, model, [[0.01, 5.0], [0.05, 1.0]], grid_size=129)
