"""Tests for the paper-motivated extensions: blacklist, budget, per-node psi.

These cover the enforcement assumption of Sections II-A/III-A (blacklist),
the budget constraint the conclusion defers to future work, the per-node
psi open question — and Proposition 2 (psi neutrality under identical
types), which needs the full auction pipeline.
"""

import numpy as np
import pytest

from repro.core import (
    AdditiveScore,
    Bid,
    Blacklist,
    BudgetedAuction,
    DeliveryReport,
    MultiDimensionalProcurementAuction,
    PerNodePsiSelection,
    PsiSelection,
    audit_round,
)


def run_simple_auction(bids, k, rng, selection=None):
    auction = MultiDimensionalProcurementAuction(
        AdditiveScore([1.0]), k, selection=selection
    )
    return auction.run(bids, rng)


class TestBlacklist:
    def make_outcome(self, rng):
        bids = [Bid(i, np.array([float(10 - i)]), 1.0) for i in range(4)]
        return run_simple_auction(bids, 2, rng)

    def test_full_delivery_no_violation(self, rng):
        outcome = self.make_outcome(rng)
        bl = Blacklist()
        reports = {
            w.node_id: DeliveryReport(w.node_id, w.quality) for w in outcome.winners
        }
        assert audit_round(outcome, reports, bl, 1) == []
        assert not bl.banned

    def test_under_delivery_files_violation(self, rng):
        outcome = self.make_outcome(rng)
        bl = Blacklist(strikes_to_ban=1)
        reports = {
            w.node_id: DeliveryReport(w.node_id, w.quality * 0.5)
            for w in outcome.winners
        }
        violations = audit_round(outcome, reports, bl, 1)
        assert len(violations) == 2
        for w in outcome.winners:
            assert bl.is_banned(w.node_id)

    def test_missing_report_counts_as_nothing(self, rng):
        outcome = self.make_outcome(rng)
        bl = Blacklist(strikes_to_ban=1)
        violations = audit_round(outcome, {}, bl, 1)
        assert {v.node_id for v in violations} == set(outcome.winner_ids)
        assert all(v.shortfall == pytest.approx(1.0) for v in violations)

    def test_tolerance_forgives_small_shortfall(self, rng):
        outcome = self.make_outcome(rng)
        bl = Blacklist(tolerance=0.10)
        reports = {
            w.node_id: DeliveryReport(w.node_id, w.quality * 0.95)
            for w in outcome.winners
        }
        assert audit_round(outcome, reports, bl, 1) == []

    def test_strike_policy(self, rng):
        outcome = self.make_outcome(rng)
        bl = Blacklist(strikes_to_ban=2)
        bad_reports = {
            w.node_id: DeliveryReport(w.node_id, w.quality * 0.1)
            for w in outcome.winners
        }
        audit_round(outcome, bad_reports, bl, 1)
        assert not bl.banned  # first strike tolerated
        audit_round(outcome, bad_reports, bl, 2)
        assert len(bl.banned) == 2  # second strike bans

    def test_filter_agents(self, rng):
        class A:
            def __init__(self, nid):
                self.node_id = nid

        bl = Blacklist(strikes_to_ban=1)
        outcome = self.make_outcome(rng)
        audit_round(outcome, {}, bl, 1)
        agents = [A(i) for i in range(4)]
        kept = bl.filter_agents(agents)
        assert {a.node_id for a in kept} == set(range(4)) - bl.banned

    def test_pardon(self, rng):
        bl = Blacklist(strikes_to_ban=1)
        outcome = self.make_outcome(rng)
        audit_round(outcome, {}, bl, 1)
        banned = next(iter(bl.banned))
        bl.pardon(banned)
        assert not bl.is_banned(banned)
        assert bl.strikes(banned) == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            Blacklist(strikes_to_ban=0)
        with pytest.raises(ValueError):
            Blacklist(tolerance=1.0)


class TestBudgetedAuction:
    def make_bids(self):
        # (node, quality, payment): scores 9, 7, 5, 3.
        return [
            Bid(0, np.array([10.0]), 1.0),
            Bid(1, np.array([9.0]), 2.0),
            Bid(2, np.array([8.0]), 3.0),
            Bid(3, np.array([7.0]), 4.0),
        ]

    def test_unconstrained_budget_equals_top_k(self, rng):
        base = MultiDimensionalProcurementAuction(AdditiveScore([1.0]), 2)
        budgeted = BudgetedAuction(base, budget=100.0)
        out = budgeted.run(self.make_bids(), rng)
        assert out.winner_ids == [0, 1]

    def test_budget_caps_spending(self, rng):
        base = MultiDimensionalProcurementAuction(AdditiveScore([1.0]), 4)
        budgeted = BudgetedAuction(base, budget=4.0)
        out = budgeted.run(self.make_bids(), rng)
        assert out.total_payment <= 4.0 + 1e-9

    def test_score_order_skips_unaffordable(self, rng):
        base = MultiDimensionalProcurementAuction(AdditiveScore([1.0]), 3)
        # Budget 4: takes node0 (1.0), node1 (2.0), skips node2 (3.0 > 1 left).
        budgeted = BudgetedAuction(base, budget=4.0)
        out = budgeted.run(self.make_bids(), rng)
        assert out.winner_ids == [0, 1]

    def test_value_per_cost_mode(self, rng):
        base = MultiDimensionalProcurementAuction(AdditiveScore([1.0]), 4)
        budgeted = BudgetedAuction(base, budget=3.0, mode="value_per_cost")
        out = budgeted.run(self.make_bids(), rng)
        # ratios: 9/1, 7/2, 5/3, 3/4 -> node0 then node1 fits budget 3.
        assert out.winner_ids == [0, 1]
        assert out.total_payment <= 3.0 + 1e-9

    def test_negative_scores_never_bought(self, rng):
        base = MultiDimensionalProcurementAuction(AdditiveScore([1.0]), 2)
        budgeted = BudgetedAuction(base, budget=100.0)
        bids = [Bid(0, np.array([1.0]), 5.0)]  # score -4
        out = budgeted.run(bids, rng)
        assert out.winners == []

    def test_rejects_second_score(self):
        base = MultiDimensionalProcurementAuction(
            AdditiveScore([1.0]), 2, payment_rule="second_score"
        )
        with pytest.raises(ValueError):
            BudgetedAuction(base, budget=1.0)

    def test_validation(self):
        base = MultiDimensionalProcurementAuction(AdditiveScore([1.0]), 2)
        with pytest.raises(ValueError):
            BudgetedAuction(base, budget=0.0)
        with pytest.raises(ValueError):
            BudgetedAuction(base, budget=1.0, mode="dutch")


class TestPerNodePsi:
    def test_constant_function_matches_psi_selection_statistics(self):
        const = PerNodePsiSelection(lambda rank: 0.5)
        plain = PsiSelection(0.5)
        top_counts = {"const": 0, "plain": 0}
        for seed in range(200):
            rng1, rng2 = np.random.default_rng(seed), np.random.default_rng(seed)
            top_counts["const"] += sum(1 for p in const.select(20, 5, rng1) if p < 5)
            top_counts["plain"] += sum(1 for p in plain.select(20, 5, rng2) if p < 5)
        assert abs(top_counts["const"] - top_counts["plain"]) < 100

    def test_decaying_psi_favours_top_more_than_uniform(self):
        decaying = PerNodePsiSelection(lambda rank: max(0.95 - 0.05 * rank, 0.05))
        uniform = PsiSelection(0.5)
        top_dec, top_uni = 0, 0
        for seed in range(300):
            top_dec += sum(
                1 for p in decaying.select(30, 5, np.random.default_rng(seed)) if p < 5
            )
            top_uni += sum(
                1 for p in uniform.select(30, 5, np.random.default_rng(seed)) if p < 5
            )
        assert top_dec > top_uni

    def test_always_fills_k(self):
        sel = PerNodePsiSelection(lambda rank: 0.1)
        for seed in range(30):
            chosen = sel.select(12, 4, np.random.default_rng(seed))
            assert len(chosen) == 4

    def test_probability_clipped(self):
        sel = PerNodePsiSelection(lambda rank: 5.0, floor=0.2)
        assert sel.probability(0) == 1.0
        sel2 = PerNodePsiSelection(lambda rank: -1.0, floor=0.2)
        assert sel2.probability(0) == pytest.approx(0.2)

    def test_validation(self):
        with pytest.raises(TypeError):
            PerNodePsiSelection(0.5)
        with pytest.raises(ValueError):
            PerNodePsiSelection(lambda r: 0.5, floor=0.0)

    def test_floor_outside_unit_interval_rejected_with_message(self):
        # Regression: floors outside (0, 1] must fail at construction with
        # a message naming the bound, for every way of reaching the class.
        for bad in (0.0, -0.1, 1.5, 2.0):
            with pytest.raises(ValueError, match=r"floor must lie in \(0, 1\]"):
                PerNodePsiSelection(lambda r: 0.5, floor=bad)
            with pytest.raises(ValueError, match=r"floor must lie in \(0, 1\]"):
                PerNodePsiSelection(schedule="constant", psi0=0.5, floor=bad)

    def test_non_finite_psi_of_rank_raises_with_message(self):
        # Regression: a psi_of_rank returning NaN/inf used to flow into the
        # admission loop; now it raises naming the offending rank.
        sel = PerNodePsiSelection(lambda r: float("nan"))
        with pytest.raises(ValueError, match=r"psi_of_rank\(3\) returned"):
            sel.probability(3)
        sel_inf = PerNodePsiSelection(lambda r: float("inf"))
        with pytest.raises(ValueError, match="finite"):
            sel_inf.select(10, 2, np.random.default_rng(0))

    def test_out_of_range_finite_values_clamp(self):
        sel = PerNodePsiSelection(lambda r: 7.0 - 10.0 * r, floor=0.25)
        assert sel.probability(0) == 1.0       # 7.0 clamps down to 1
        assert sel.probability(5) == 0.25      # -43 clamps up to the floor

    def test_exactly_one_of_callable_or_schedule(self):
        with pytest.raises(TypeError, match="exactly one"):
            PerNodePsiSelection()
        with pytest.raises(TypeError, match="exactly one"):
            PerNodePsiSelection(lambda r: 0.5, schedule="geometric")

    def test_declarative_schedules(self):
        geo = PerNodePsiSelection(schedule="geometric", psi0=0.8, decay=0.5, floor=0.1)
        assert geo.probability(0) == pytest.approx(0.8)
        assert geo.probability(2) == pytest.approx(0.2)
        assert geo.probability(10) == pytest.approx(0.1)  # floored
        lin = PerNodePsiSelection(schedule="linear", psi0=0.9, slope=0.3, floor=0.05)
        assert lin.probability(1) == pytest.approx(0.6)
        assert lin.probability(9) == pytest.approx(0.05)
        const = PerNodePsiSelection(schedule="constant", psi0=0.4)
        assert all(const.probability(r) == pytest.approx(0.4) for r in range(5))

    def test_schedule_parameter_validation(self):
        with pytest.raises(ValueError, match="unknown rank schedule"):
            PerNodePsiSelection(schedule="harmonic")
        with pytest.raises(ValueError, match=r"psi0 must lie in \(0, 1\]"):
            PerNodePsiSelection(schedule="geometric", psi0=1.2)
        with pytest.raises(ValueError, match=r"decay must lie in \(0, 1\]"):
            PerNodePsiSelection(schedule="geometric", decay=0.0)
        with pytest.raises(ValueError, match="slope must be >= 0"):
            PerNodePsiSelection(schedule="linear", slope=-0.1)

    def test_registry_spec_is_fully_declarative(self):
        from repro.core.registry import WINNER_SELECTIONS

        sel = WINNER_SELECTIONS.create(
            {"name": "per_node_psi", "schedule": "geometric", "psi0": 0.9, "decay": 0.9}
        )
        assert isinstance(sel, PerNodePsiSelection)
        chosen = sel.select(20, 5, np.random.default_rng(0))
        assert len(chosen) == 5


class TestProposition2:
    """Identical private types => psi does not change winning probability."""

    def test_win_rate_is_k_over_n_for_any_psi(self):
        n, k = 8, 3
        win_counts = {0.3: np.zeros(n), 1.0: np.zeros(n)}
        trials = 1500
        for psi in win_counts:
            for seed in range(trials):
                rng = np.random.default_rng(seed)
                # Same theta -> same equilibrium bid -> identical scores.
                bids = [Bid(i, np.array([2.0]), 0.7) for i in range(n)]
                out = run_simple_auction(bids, k, rng, selection=PsiSelection(psi))
                for w in out.winner_ids:
                    win_counts[psi][w] += 1
        for psi, counts in win_counts.items():
            rates = counts / trials
            np.testing.assert_allclose(rates, k / n, atol=0.06)
