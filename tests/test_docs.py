"""The docs tree: generated reference stays in sync, links resolve.

``docs/scenario_reference.md`` is emitted by ``python -m repro registry
--markdown`` (see :mod:`repro.api.reference`); these tests fail whenever
the committed page drifts from the live registries — so registering a
component without regenerating the doc is a red build, not silent rot.
The link checks keep README/docs cross-references from dangling.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.api.reference import (
    FAMILIES,
    iter_entries,
    registry_reference_markdown,
    registry_summary,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
DOCS = REPO_ROOT / "docs"

_LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _markdown_pages() -> list[Path]:
    pages = [REPO_ROOT / "README.md", *sorted(DOCS.glob("*.md"))]
    assert pages, "no markdown pages found"
    return pages


class TestScenarioReference:
    def test_committed_page_matches_the_emitter(self):
        committed = (DOCS / "scenario_reference.md").read_text()
        assert committed == registry_reference_markdown(), (
            "docs/scenario_reference.md is stale; regenerate with:\n"
            "  PYTHONPATH=src python -m repro registry --markdown "
            "> docs/scenario_reference.md"
        )

    def test_every_registered_name_is_documented(self):
        page = registry_reference_markdown()
        for registry, title, _ in FAMILIES:
            assert f"## {title}" in page
            for name in registry.names():
                assert f"`{name}`" in page, f"{title} entry {name!r} missing"

    def test_distributed_executor_is_documented(self):
        entries = {(e.family, e.name): e for e in iter_entries()}
        entry = entries[("Executors", "distributed")]
        assert "lease_seconds" in entry.parameters
        assert entry.summary != "—"

    def test_cli_markdown_matches_page(self, capsys):
        assert main(["registry", "--markdown"]) == 0
        assert capsys.readouterr().out == registry_reference_markdown()

    def test_cli_summary_lists_every_family(self, capsys):
        assert main(["registry"]) == 0
        out = capsys.readouterr().out
        for _, title, _ in FAMILIES:
            assert title in out
        assert "distributed" in out
        assert registry_summary() in out


class TestDocsTree:
    def test_expected_pages_exist(self):
        for name in ("ARCHITECTURE.md", "scenario_reference.md", "deployment.md"):
            assert (DOCS / name).is_file(), f"docs/{name} missing"

    def test_readme_links_the_docs_tree(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for name in ("ARCHITECTURE.md", "scenario_reference.md", "deployment.md"):
            assert f"docs/{name}" in readme, f"README does not link docs/{name}"

    def test_readme_no_longer_claims_local_machine_only(self):
        readme = (REPO_ROOT / "README.md").read_text()
        assert "distributed" in readme
        assert "repro worker" in readme

    @pytest.mark.parametrize(
        "page", _markdown_pages(), ids=lambda p: str(p.relative_to(REPO_ROOT))
    )
    def test_relative_links_resolve(self, page):
        text = page.read_text()
        broken = []
        for target in _LINK_RE.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            if not (page.parent / path).exists():
                broken.append(target)
        assert not broken, f"{page}: dangling links {broken}"
