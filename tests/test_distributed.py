"""The distributed sweep backend: job queue, workers, coordinator, scripts.

The contracts under test (ISSUE 5 acceptance):

* the ``distributed`` executor produces **bitwise-identical**
  ``RunResult``s — histories, payments, and byte-for-byte manifests —
  versus the serial executor, on the paper-preset simulation game (with
  a policy pipeline) and the Section V-C cluster testbed;
* a worker killed after claiming a cell is handled by lease expiry: the
  stale lock is stolen, the cell re-queued and completed identically
  (restarted from round zero, or resumed from its checkpoint when the
  run asked for ``resume``);
* store-sharing edge cases: concurrent manifest writes to one cell are
  last-writer-wins over identical bytes, a worker pointed at a foreign
  store dies with ``StoreMismatchError``, and stale locks are reclaimed;
* ``scenario --emit-jobs`` writes runnable SLURM-style per-cell scripts
  speaking the same store protocol.
"""

from __future__ import annotations

import json
import shutil
import threading
from pathlib import Path

import pytest

from repro.__main__ import main
from repro.api import (
    EXECUTORS,
    DistributedExecutor,
    ExperimentStore,
    FMoreEngine,
    JobQueue,
    RunResult,
    Scenario,
    StoreMismatchError,
    emit_job_scripts,
    run_worker,
    scenario_hash,
)

POLICIES = {
    "churn": {"departure_prob": 0.25, "arrival_prob": 0.6},
    "audit_blacklist": {
        "defect_fraction": 0.3,
        "shortfall": 0.5,
        "strikes_to_ban": 1,
    },
}


def _paper_scenario(**overrides) -> Scenario:
    """The paper preset's component mix at test scale, with policies."""
    defaults = dict(
        n_clients=8,
        k_winners=3,
        n_rounds=3,
        test_per_class=6,
        size_range=(60, 240),
        grid_size=17,
        model_width=0.12,
        image_size=14,
        batch_size=16,
        policies=POLICIES,
    )
    return Scenario.from_preset(
        "paper",
        "mnist_o",
        schemes=("FMore", "RandFL"),
        seeds=overrides.pop("seeds", (0,)),
        **{**defaults, **overrides},
    )


def _cluster_scenario(**overrides) -> Scenario:
    return Scenario.from_preset(
        "cluster_cifar10",
        seeds=(0,),
        n_clients=6,
        k_winners=2,
        n_rounds=2,
        test_per_class=6,
        size_range=(40, 120),
        model_width=0.12,
        grid_size=17,
        **overrides,
    )


def _cells(scenario: Scenario) -> list[tuple[str, int]]:
    return [(s, d) for d in scenario.seeds for s in scenario.schemes]


def _distributed(scenario: Scenario, **execution) -> Scenario:
    spec = {
        "executor": "distributed",
        "max_workers": 0,
        "lease_seconds": 30.0,
        "poll_interval": 0.05,
    }
    spec.update(execution)
    return scenario.with_(execution=spec)


def _assert_manifests_bitwise(reference_root: Path, other_root: Path) -> None:
    """Every manifest under ``reference_root`` must match byte-for-byte."""
    ref_runs = Path(reference_root) / "runs"
    manifests = sorted(ref_runs.rglob("*.json"))
    assert manifests, f"no reference manifests under {ref_runs}"
    for ref in manifests:
        other = Path(other_root) / "runs" / ref.relative_to(ref_runs)
        assert other.exists(), f"missing manifest {other}"
        assert ref.read_bytes() == other.read_bytes(), f"manifest drift: {other}"


def _drain_in_thread(store_root: Path, n_cells: int, worker_id: str) -> threading.Thread:
    """A background worker that completes exactly ``n_cells`` then exits."""
    thread = threading.Thread(
        target=run_worker,
        kwargs=dict(
            store=store_root,
            poll_interval=0.02,
            max_cells=n_cells,
            worker_id=worker_id,
        ),
        daemon=True,
    )
    thread.start()
    return thread


@pytest.fixture(scope="module")
def paper_reference(tmp_path_factory):
    scenario = _paper_scenario()
    root = tmp_path_factory.mktemp("paper-serial")
    result = FMoreEngine().run(scenario, store=root)
    return scenario, result, root


@pytest.fixture(scope="module")
def cluster_reference(tmp_path_factory):
    scenario = _cluster_scenario()
    root = tmp_path_factory.mktemp("cluster-serial")
    result = FMoreEngine().run(scenario, store=root)
    return scenario, result, root


# ----------------------------------------------------------------------
# Scenario spec surface
# ----------------------------------------------------------------------
class TestDistributedExecutionSpec:
    def test_registered(self):
        assert "distributed" in EXECUTORS
        executor = EXECUTORS.create(
            {"name": "distributed", "max_workers": 2, "lease_seconds": 5}
        )
        assert isinstance(executor, DistributedExecutor)
        assert executor.needs_store
        assert not executor.in_process

    def test_spec_canonicalised_with_defaults_and_round_trips(self):
        scenario = Scenario(execution={"executor": "distributed"})
        assert scenario.execution == {
            "executor": "distributed",
            "max_workers": None,
            "lease_seconds": 300.0,
            "poll_interval": 1.0,
        }
        again = Scenario.from_json(scenario.to_json())
        assert again.execution == scenario.execution

    def test_lease_keys_rejected_for_pool_executors(self):
        with pytest.raises(ValueError, match="only apply to"):
            Scenario(execution={"executor": "serial", "lease_seconds": 5})
        with pytest.raises(ValueError, match="only apply to"):
            Scenario(execution={"executor": "process", "poll_interval": 1})

    def test_zero_workers_means_coordinate_only(self):
        scenario = Scenario(
            execution={"executor": "distributed", "max_workers": 0}
        )
        assert scenario.execution["max_workers"] == 0
        with pytest.raises(ValueError, match="max_workers"):
            Scenario(execution={"executor": "thread", "max_workers": 0})

    def test_bad_lease_and_poll_rejected(self):
        with pytest.raises(ValueError, match="lease_seconds"):
            Scenario(execution={"executor": "distributed", "lease_seconds": -1})
        with pytest.raises(ValueError, match="poll_interval"):
            Scenario(execution={"executor": "distributed", "poll_interval": 0})

    def test_execution_spec_still_outside_the_content_address(self):
        scenario = _paper_scenario()
        assert scenario_hash(scenario) == scenario_hash(_distributed(scenario))

    def test_map_is_not_the_interface(self):
        with pytest.raises(RuntimeError, match="execute_plan"):
            DistributedExecutor(max_workers=0).map(abs, [1])

    def test_cli_executor_flag_switches_off_distributed(self, tmp_path, capsys):
        """--executor serial on a distributed scenario must drop the
        distributed-only keys instead of tripping validation."""
        spec_path = tmp_path / "dist.json"
        spec_path.write_text(
            Scenario(execution={"executor": "distributed"}).to_json()
        )
        assert (
            main(["scenario", "--scenario", str(spec_path), "--executor", "serial"])
            == 0
        )
        out = json.loads(capsys.readouterr().out)
        assert out["execution"] == {"executor": "serial", "max_workers": None}
        # --parallel alone keeps the distributed executor (N local workers).
        assert main(["scenario", "--scenario", str(spec_path), "--parallel", "3"]) == 0
        out = json.loads(capsys.readouterr().out)
        assert out["execution"]["executor"] == "distributed"
        assert out["execution"]["max_workers"] == 3


# ----------------------------------------------------------------------
# The filesystem job queue
# ----------------------------------------------------------------------
class TestJobQueue:
    def test_enqueue_skips_done_and_queued_cells(self, tmp_path, paper_reference):
        scenario, _, _ = paper_reference
        store = ExperimentStore(tmp_path)
        queue = JobQueue(store)
        written = queue.enqueue(scenario, _cells(scenario))
        assert len(written) == 2
        # Idempotent: nothing new on a re-enqueue.
        assert queue.enqueue(scenario, _cells(scenario)) == []
        assert len(queue.pending()) == 2
        # A landed manifest retires the cell from future enqueues.
        history = FMoreEngine().run_scheme(scenario, "FMore", 0)
        store.save_history(scenario, "FMore", 0, history)
        for path in written:
            path.unlink()
        assert [p.name for p in queue.enqueue(scenario, _cells(scenario))] == [
            "RandFL-seed0.json"
        ]

    def test_claim_is_exclusive_and_ordered(self, tmp_path, paper_reference):
        scenario, _, _ = paper_reference
        queue = JobQueue(tmp_path)
        queue.enqueue(scenario, _cells(scenario))
        first = queue.claim("w1")
        second = queue.claim("w2")
        assert first is not None and second is not None
        assert {first.cell, second.cell} == set(_cells(scenario))
        assert first.worker == "w1" and second.worker == "w2"
        assert queue.claim("w3") is None  # everything locked
        queue.release(first)
        stolen = queue.claim("w3")
        assert stolen is not None and stolen.cell == first.cell

    def test_heartbeat_detects_a_stolen_lease(self, tmp_path, paper_reference):
        scenario, _, _ = paper_reference
        queue = JobQueue(tmp_path)
        # A single cell, so the steal is the thief's only option whatever
        # its shuffled scan order.
        queue.enqueue(scenario, _cells(scenario)[:1], lease_seconds=0.0)
        victim = queue.claim("victim")
        assert victim is not None
        # lease_seconds=0: instantly stale, so another worker steals it.
        thief = queue.claim("thief")
        assert thief is not None and thief.cell == victim.cell
        assert queue.heartbeat(victim) is False
        assert queue.heartbeat(thief) is True

    def test_reclaim_stale_requeues_dead_claims(self, tmp_path, paper_reference):
        scenario, _, _ = paper_reference
        queue = JobQueue(tmp_path)
        queue.enqueue(scenario, _cells(scenario), lease_seconds=0.0)
        job = queue.claim("dead")
        assert job is not None
        assert job.lock_path.exists()
        reclaimed = queue.reclaim_stale()
        assert job.lock_path in reclaimed
        assert not job.lock_path.exists()
        # Live claims survive a reclaim pass.
        queue2 = JobQueue(tmp_path / "live")
        queue2.enqueue(scenario, _cells(scenario), lease_seconds=300.0)
        live = queue2.claim("alive")
        assert queue2.reclaim_stale() == []
        assert live.lock_path.exists()

    def test_payload_less_lock_ages_out_by_mtime(self, tmp_path, paper_reference):
        """A worker killed between creating a lock and writing its payload
        leaves a 0-byte file with no recorded lease; it must age out by
        mtime instead of wedging the cell forever."""
        import os
        import time

        scenario, _, _ = paper_reference
        queue = JobQueue(tmp_path)
        written = queue.enqueue(scenario, _cells(scenario))
        empty_lock = JobQueue.lock_path_for(written[0])
        empty_lock.touch()
        # Fresh payload-less locks are treated as live (mid-write race)...
        assert queue.claim("wary") is not None  # the *other* cell
        assert queue.claim("wary") is None
        # ...but once older than the default lease they are stealable.
        old = time.time() - 10_000
        os.utime(empty_lock, (old, old))
        stolen = queue.claim("janitor")
        assert stolen is not None
        assert stolen.path == written[0]

    def test_worker_on_a_foreign_store_fails_fast(self, tmp_path, paper_reference):
        scenario, _, _ = paper_reference
        # Store A queues our scenario's jobs...
        store_a = ExperimentStore(tmp_path / "a")
        JobQueue(store_a).enqueue(scenario, _cells(scenario))
        # ...store B was populated by a *different* scenario.
        store_b = ExperimentStore(tmp_path / "b")
        store_b.register_scenario(scenario.with_(name="somebody-else"))
        shutil.copytree(store_a.root / "jobs", store_b.root / "jobs")
        with pytest.raises(StoreMismatchError, match="foreign store"):
            JobQueue(store_b).claim("lost-worker")
        # The CLI surfaces it as a clean error, not a traceback.
        with pytest.raises(SystemExit, match="foreign store"):
            main(["worker", "--store", str(store_b.root), "--exit-when-idle"])


# ----------------------------------------------------------------------
# Workers: drain, steal, resume — always bitwise
# ----------------------------------------------------------------------
class TestWorker:
    def test_drains_queue_bitwise_paper_preset(self, tmp_path, paper_reference):
        scenario, reference, ref_root = paper_reference
        store = ExperimentStore(tmp_path)
        queue = JobQueue(store)
        queue.enqueue(scenario, _cells(scenario))
        completed = run_worker(store, exit_when_idle=True, worker_id="w0")
        assert completed == 2
        assert queue.pending() == []
        result = RunResult.load(store, scenario)
        for scheme in scenario.schemes:
            assert (
                result.histories[scheme][0].records
                == reference.histories[scheme][0].records
            )
        _assert_manifests_bitwise(ref_root, tmp_path)

    def test_drains_queue_bitwise_cluster_preset(self, tmp_path, cluster_reference):
        scenario, reference, ref_root = cluster_reference
        store = ExperimentStore(tmp_path)
        JobQueue(store).enqueue(scenario, _cells(scenario))
        assert run_worker(store, exit_when_idle=True) == 2
        result = RunResult.load(store, scenario)
        for scheme in scenario.schemes:
            mine = result.histories[scheme][0]
            ref = reference.histories[scheme][0]
            assert mine.records == ref.records
            assert mine.cumulative_seconds == ref.cumulative_seconds
        _assert_manifests_bitwise(ref_root, tmp_path)

    def test_killed_worker_requeued_via_lease_and_completed_bitwise(
        self, tmp_path, paper_reference
    ):
        scenario, _, ref_root = paper_reference
        store = ExperimentStore(tmp_path)
        queue = JobQueue(store)
        queue.enqueue(scenario, _cells(scenario), lease_seconds=0.0)
        # The victim claims a cell and "dies" — lock left behind, no
        # manifest, exactly what kill -9 mid-cell leaves on disk.
        assert (
            run_worker(
                store, exit_when_idle=True, worker_id="victim", crash_after_claim=True
            )
            == 0
        )
        locks = list((store.root / "jobs").rglob("*.lock"))
        assert len(locks) == 1
        assert not list((store.root / "runs").rglob("*.json"))
        # A surviving worker steals the expired lease and finishes all.
        assert run_worker(store, exit_when_idle=True, worker_id="thief") == 2
        assert queue.pending() == []
        _assert_manifests_bitwise(ref_root, tmp_path)

    def test_stolen_cell_resumes_from_checkpoint_bitwise(
        self, tmp_path, paper_reference
    ):
        scenario, _, ref_root = paper_reference
        store = ExperimentStore(tmp_path)
        queue = JobQueue(store)
        queue.enqueue(
            scenario, _cells(scenario), resume=True, lease_seconds=0.0
        )
        # Simulate a worker that ran one round, checkpointed, then died.
        victim = queue.claim("victim")
        assert victim is not None
        engine = FMoreEngine()
        session = engine.session(scenario, victim.scheme, victim.seed)
        next(session)
        store.save_checkpoint(session.snapshot())
        del session  # lock stays: the victim never released or completed
        # The thief must pick the cell up from round 1, not round 0, and
        # still land the byte-identical manifest.
        assert run_worker(store, exit_when_idle=True, worker_id="thief") == 2
        _assert_manifests_bitwise(ref_root, tmp_path)
        assert not list((store.root / "checkpoints").rglob("state.json"))

    def test_worker_skips_cell_completed_elsewhere(self, tmp_path, paper_reference):
        scenario, reference, _ = paper_reference
        store = ExperimentStore(tmp_path)
        queue = JobQueue(store)
        queue.enqueue(scenario, _cells(scenario))
        # Another worker (on another machine) finished FMore but crashed
        # before retiring the job file.
        store.save_history(
            scenario, "FMore", 0, reference.histories["FMore"][0]
        )
        completed = run_worker(store, exit_when_idle=True)
        assert completed == 1  # only RandFL actually ran
        assert queue.pending() == []

    def test_concurrent_manifest_writes_last_writer_wins(
        self, tmp_path, paper_reference
    ):
        scenario, reference, _ = paper_reference
        store = ExperimentStore(tmp_path)
        history = reference.histories["FMore"][0]
        first = store.save_history(scenario, "FMore", 0, history).read_bytes()
        # A racing worker re-writes the same cell: atomic replace, and the
        # deterministic cell contract makes the bytes identical.
        second = store.save_history(scenario, "FMore", 0, history).read_bytes()
        assert first == second
        assert store.load_history(scenario, "FMore", 0).records == history.records


# ----------------------------------------------------------------------
# The coordinator (engine integration)
# ----------------------------------------------------------------------
class TestDistributedEngine:
    def test_needs_a_store(self):
        scenario = _distributed(_paper_scenario())
        with pytest.raises(ValueError, match="store"):
            FMoreEngine().run(scenario)

    def test_rejects_stop_after(self, tmp_path):
        scenario = _distributed(_paper_scenario())
        with pytest.raises(ValueError, match="stop_after"):
            FMoreEngine().run(scenario, store=tmp_path, stop_after=1)

    def test_rejects_a_live_timer(self, tmp_path):
        class Timer:
            def round_seconds(self, *a, **k):  # pragma: no cover - stub
                return 0.0

        scenario = _distributed(_paper_scenario())
        with pytest.raises(ValueError, match="timer"):
            FMoreEngine(timer=Timer()).run(scenario, store=tmp_path)

    def test_coordinate_only_run_with_external_worker_bitwise(
        self, tmp_path, paper_reference
    ):
        scenario, reference, ref_root = paper_reference
        plan = _distributed(scenario)
        thread = _drain_in_thread(tmp_path, n_cells=2, worker_id="external")
        result = FMoreEngine().run(plan, store=tmp_path)
        thread.join(timeout=120)
        assert not thread.is_alive()
        for scheme in scenario.schemes:
            assert (
                result.histories[scheme][0].records
                == reference.histories[scheme][0].records
            )
        _assert_manifests_bitwise(ref_root, tmp_path)
        assert JobQueue(tmp_path).pending() == []

    def test_completed_cells_load_instead_of_requeue(
        self, tmp_path, paper_reference
    ):
        scenario, reference, _ = paper_reference
        store = ExperimentStore(tmp_path)
        reference.save(store)
        # Every cell has a manifest: no workers exist, yet the run returns
        # immediately with the stored histories.
        result = FMoreEngine().run(_distributed(scenario), store=store)
        for scheme in scenario.schemes:
            assert (
                result.histories[scheme][0].records
                == reference.histories[scheme][0].records
            )
        assert JobQueue(store).pending() == []

    def test_force_recomputes_through_workers_bitwise(
        self, tmp_path, paper_reference
    ):
        scenario, reference, ref_root = paper_reference
        store = ExperimentStore(tmp_path)
        reference.save(store)
        thread = _drain_in_thread(tmp_path, n_cells=2, worker_id="forcer")
        result = FMoreEngine().run(_distributed(scenario), store=store, force=True)
        thread.join(timeout=120)
        assert not thread.is_alive()
        for scheme in scenario.schemes:
            assert (
                result.histories[scheme][0].records
                == reference.histories[scheme][0].records
            )
        _assert_manifests_bitwise(ref_root, tmp_path)

    def test_spawned_local_workers_bitwise(self, tmp_path, paper_reference):
        """The full subprocess path: coordinator spawns 2 real workers."""
        scenario, reference, ref_root = paper_reference
        plan = _distributed(scenario, max_workers=2, poll_interval=0.2)
        result = FMoreEngine().run(plan, store=tmp_path)
        for scheme in scenario.schemes:
            assert (
                result.histories[scheme][0].records
                == reference.histories[scheme][0].records
            )
        _assert_manifests_bitwise(ref_root, tmp_path)
        assert JobQueue(tmp_path).pending() == []


# ----------------------------------------------------------------------
# CLI worker + batch job emission
# ----------------------------------------------------------------------
class TestWorkerCLI:
    def test_worker_needs_a_store(self):
        with pytest.raises(SystemExit, match="--store"):
            main(["worker"])

    def test_worker_drains_and_reports(self, tmp_path, paper_reference, capsys):
        scenario, _, ref_root = paper_reference
        JobQueue(tmp_path).enqueue(scenario, _cells(scenario))
        code = main(
            [
                "worker",
                "--store",
                str(tmp_path),
                "--exit-when-idle",
                "--worker-id",
                "cli-worker",
            ]
        )
        assert code == 0
        assert "completed 2 cell(s)" in capsys.readouterr().out
        _assert_manifests_bitwise(ref_root, tmp_path)

    def test_max_cells_bounds_the_lifetime(self, tmp_path, paper_reference, capsys):
        scenario, _, _ = paper_reference
        JobQueue(tmp_path).enqueue(scenario, _cells(scenario))
        assert main(["worker", "--store", str(tmp_path), "--max-cells", "1"]) == 0
        assert "completed 1 cell(s)" in capsys.readouterr().out
        assert len(JobQueue(tmp_path).pending()) == 1


class TestEmitJobs:
    def test_emits_scenario_scripts_array_and_readme(self, tmp_path):
        scenario = _paper_scenario(seeds=(0, 1))
        written = emit_job_scripts(scenario, tmp_path / "sweep")
        names = {p.name for p in written}
        assert "scenario.json" in names
        assert "submit_array.sh" in names
        assert "README.md" in names
        # One executable script per (scheme, seed) cell, each referenced
        # by the array wrapper, all addressing the same scenario hash.
        cells = _cells(scenario)
        scripts = sorted((tmp_path / "sweep" / "jobs").glob("cell-*.sh"))
        assert len(scripts) == len(cells)
        array_text = (tmp_path / "sweep" / "submit_array.sh").read_text()
        assert f"--array=0-{len(cells) - 1}" in array_text
        for scheme, seed in cells:
            script = tmp_path / "sweep" / "jobs" / f"cell-{scheme}-seed{seed}.sh"
            assert script.stat().st_mode & 0o111, "cell script not executable"
            text = script.read_text()
            assert f"--set schemes={scheme}" in text
            assert f"--set seeds={seed}" in text
            assert f"jobs/{script.name}" in array_text
        spec = Scenario.from_json(
            (tmp_path / "sweep" / "scenario.json").read_text()
        )
        assert spec == scenario

    def test_cli_emit_jobs_flag(self, tmp_path, capsys):
        code = main(
            [
                "scenario",
                "--preset",
                "smoke",
                "--set",
                "n_rounds=2",
                "--emit-jobs",
                str(tmp_path / "sweep"),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "submit_array.sh" in out
        assert (tmp_path / "sweep" / "scenario.json").exists()

    def test_emitted_script_runs_one_cell_bitwise(self, tmp_path, paper_reference):
        """A cell script is the store protocol with a scheduler as the
        coordinator: running it must land the byte-identical manifest."""
        import os
        import subprocess
        import sys

        scenario, _, ref_root = paper_reference
        emit_job_scripts(scenario, tmp_path / "sweep")
        script = tmp_path / "sweep" / "jobs" / "cell-FMore-seed0.sh"
        store_root = tmp_path / "store"
        src_dir = str(Path(__file__).resolve().parents[1] / "src")
        env = dict(os.environ)
        env["STORE"] = str(store_root)
        env["PYTHONPATH"] = (
            src_dir
            if not env.get("PYTHONPATH")
            else os.pathsep.join([src_dir, env["PYTHONPATH"]])
        )
        proc = subprocess.run(
            ["bash", str(script)],
            env=env,
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stderr
        h = scenario_hash(scenario)
        cell = f"runs/{h}/FMore-seed0.json"
        assert (store_root / cell).read_bytes() == (ref_root / cell).read_bytes()
