"""Gradient checks and behavioural tests for the feed-forward layers.

Every layer's backward pass is validated against central finite differences
of its forward pass — both for input gradients and parameter gradients.
The checks on backend-routed layers (Dense, Conv2D) take the ``nn_backend``
fixture, which re-runs them under every registered ``NN_BACKENDS`` entry
(skipping backends whose optional dependency is absent).
"""

import numpy as np
import pytest

from repro.fl.nn.layers import (
    Conv2D,
    Dense,
    Dropout,
    Flatten,
    MaxPool2D,
    ReLU,
    Sigmoid,
    Tanh,
)


def input_gradient_error(layer, x, rng, n_checks=60, eps=1e-6):
    """Max relative error between analytic and numeric dL/dx."""
    layer.build(x.shape[1:], np.random.default_rng(0))
    y = layer.forward(x, training=False)
    gy = rng.standard_normal(y.shape)
    layer.forward(x, training=False)
    gx = layer.backward(gy)
    flat = x.reshape(-1)
    idxs = rng.choice(flat.size, size=min(n_checks, flat.size), replace=False)
    worst = 0.0
    for i in idxs:
        orig = flat[i]
        flat[i] = orig + eps
        fp = float(np.sum(layer.forward(x, training=False) * gy))
        flat[i] = orig - eps
        fm = float(np.sum(layer.forward(x, training=False) * gy))
        flat[i] = orig
        num = (fp - fm) / (2 * eps)
        ana = gx.reshape(-1)[i]
        worst = max(worst, abs(ana - num) / (abs(num) + 1.0))
    return worst


def param_gradient_error(layer, x, rng, n_checks=60, eps=1e-6):
    """Max relative error between analytic and numeric dL/dtheta."""
    layer.build(x.shape[1:], np.random.default_rng(0))
    y = layer.forward(x, training=False)
    gy = rng.standard_normal(y.shape)
    layer.forward(x, training=False)
    layer.backward(gy)
    worst = 0.0
    for p, g in zip(layer.params, layer.grads):
        flat = p.reshape(-1)
        gflat = g.reshape(-1)
        idxs = rng.choice(flat.size, size=min(n_checks, flat.size), replace=False)
        for i in idxs:
            orig = flat[i]
            flat[i] = orig + eps
            fp = float(np.sum(layer.forward(x, training=False) * gy))
            flat[i] = orig - eps
            fm = float(np.sum(layer.forward(x, training=False) * gy))
            flat[i] = orig
            num = (fp - fm) / (2 * eps)
            worst = max(worst, abs(gflat[i] - num) / (abs(num) + 1.0))
    return worst


class TestDense:
    def test_forward_shape(self, rng):
        layer = Dense(7)
        layer.build((4,), rng)
        assert layer.forward(rng.standard_normal((3, 4))).shape == (3, 7)

    def test_input_gradient(self, rng, nn_backend):
        assert input_gradient_error(Dense(5), rng.standard_normal((4, 6)), rng) < 1e-6

    def test_param_gradient(self, rng, nn_backend):
        assert param_gradient_error(Dense(5), rng.standard_normal((4, 6)), rng) < 1e-6

    def test_rejects_multidim_input(self, rng):
        with pytest.raises(ValueError):
            Dense(3).build((4, 4, 2), rng)

    def test_parameter_count(self, rng):
        layer = Dense(5)
        layer.build((4,), rng)
        assert layer.n_parameters == 4 * 5 + 5


class TestActivations:
    @pytest.mark.parametrize("layer_cls", [ReLU, Tanh, Sigmoid])
    def test_input_gradient(self, layer_cls, rng):
        x = rng.standard_normal((5, 8)) + 0.1  # avoid ReLU kink at exactly 0
        assert input_gradient_error(layer_cls(), x, rng) < 1e-6

    def test_relu_zeroes_negatives(self, rng):
        layer = ReLU()
        layer.build((3,), rng)
        out = layer.forward(np.array([[-1.0, 0.0, 2.0]]))
        np.testing.assert_allclose(out, [[0.0, 0.0, 2.0]])

    def test_sigmoid_range(self, rng):
        layer = Sigmoid()
        layer.build((4,), rng)
        out = layer.forward(rng.standard_normal((10, 4)) * 5)
        assert np.all((out > 0) & (out < 1))


class TestFlatten:
    def test_roundtrip(self, rng):
        layer = Flatten()
        layer.build((2, 3, 4), rng)
        x = rng.standard_normal((5, 2, 3, 4))
        y = layer.forward(x)
        assert y.shape == (5, 24)
        gx = layer.backward(y)
        assert gx.shape == x.shape


class TestDropout:
    def test_identity_at_eval(self, rng):
        layer = Dropout(0.5)
        layer.build((10,), rng)
        x = rng.standard_normal((4, 10))
        np.testing.assert_array_equal(layer.forward(x, training=False), x)

    def test_inverted_scaling_preserves_mean(self, rng):
        layer = Dropout(0.3)
        layer.build((1000,), rng)
        x = np.ones((20, 1000))
        out = layer.forward(x, training=True)
        assert out.mean() == pytest.approx(1.0, abs=0.05)

    def test_backward_uses_same_mask(self, rng):
        layer = Dropout(0.5)
        layer.build((50,), rng)
        x = np.ones((2, 50))
        out = layer.forward(x, training=True)
        grad = layer.backward(np.ones_like(out))
        np.testing.assert_array_equal((out == 0), (grad == 0))

    def test_rejects_rate_one(self):
        with pytest.raises(ValueError):
            Dropout(1.0)


class TestConv2D:
    def test_output_shape_valid(self, rng):
        layer = Conv2D(8, kernel_size=3)
        assert layer.output_shape((10, 10, 3)) == (8, 8, 8)

    def test_output_shape_same(self, rng):
        layer = Conv2D(4, kernel_size=3, padding="same")
        assert layer.output_shape((10, 10, 3)) == (10, 10, 4)

    def test_matches_naive_convolution(self, rng):
        layer = Conv2D(2, kernel_size=3)
        layer.build((5, 5, 2), rng)
        x = rng.standard_normal((1, 5, 5, 2))
        out = layer.forward(x)
        kernel, bias = layer.params
        k = kernel.reshape(3, 3, 2, 2)
        naive = np.zeros((1, 3, 3, 2))
        for i in range(3):
            for j in range(3):
                patch = x[0, i : i + 3, j : j + 3, :]
                for f in range(2):
                    naive[0, i, j, f] = np.sum(patch * k[:, :, :, f]) + bias[f]
        np.testing.assert_allclose(out, naive, atol=1e-12)

    def test_input_gradient(self, rng, nn_backend):
        assert input_gradient_error(Conv2D(3, 3), rng.standard_normal((2, 6, 6, 2)), rng) < 1e-6

    def test_param_gradient(self, rng, nn_backend):
        assert param_gradient_error(Conv2D(3, 3), rng.standard_normal((2, 6, 6, 2)), rng) < 1e-6

    def test_stride_two(self, rng, nn_backend):
        layer = Conv2D(2, kernel_size=3, stride=2)
        assert layer.output_shape((7, 7, 1)) == (3, 3, 2)
        assert input_gradient_error(layer, rng.standard_normal((2, 7, 7, 1)), rng) < 1e-6

    def test_kernel_too_large(self):
        with pytest.raises(ValueError):
            Conv2D(2, kernel_size=9).output_shape((5, 5, 1))


class TestMaxPool2D:
    def test_output_shape(self):
        assert MaxPool2D(2).output_shape((8, 8, 3)) == (4, 4, 3)

    def test_takes_window_max(self, rng):
        layer = MaxPool2D(2)
        layer.build((2, 2, 1), rng)
        x = np.array([[[[1.0], [2.0]], [[3.0], [4.0]]]])
        assert layer.forward(x)[0, 0, 0, 0] == 4.0

    def test_input_gradient(self, rng):
        x = rng.standard_normal((2, 6, 6, 3))
        assert input_gradient_error(MaxPool2D(2), x, rng) < 1e-6

    def test_gradient_routes_to_argmax(self, rng):
        layer = MaxPool2D(2)
        layer.build((2, 2, 1), rng)
        x = np.array([[[[1.0], [5.0]], [[3.0], [4.0]]]])
        layer.forward(x)
        gx = layer.backward(np.ones((1, 1, 1, 1)))
        np.testing.assert_allclose(gx[0, :, :, 0], [[0.0, 1.0], [0.0, 0.0]])
