"""Tests for the MEC substrate: resources, nodes, network, timing, cluster."""

import numpy as np
import pytest

from repro.core.costs import LinearCost
from repro.core.equilibrium import EquilibriumSolver
from repro.core.scoring import AdditiveScore, MultiplicativeScore
from repro.core.valuation import PrivateValueModel, UniformTheta
from repro.mec.cluster import (
    SimulatedCluster,
    build_cluster_specs,
    cluster_quality_extractor,
)
from repro.mec.network import Link, duplex_transfer_time
from repro.mec.node import EdgeNode, default_quality_extractor
from repro.mec.resources import (
    RandomWalkDynamics,
    ResourceProfile,
    StaticDynamics,
    UniformAvailabilityDynamics,
)
from repro.mec.timing import ComputeModel


class TestResourceProfile:
    def test_validation(self):
        with pytest.raises(ValueError):
            ResourceProfile(data_size=-1, category_proportion=0.5)
        with pytest.raises(ValueError):
            ResourceProfile(data_size=10, category_proportion=1.5)
        with pytest.raises(ValueError):
            ResourceProfile(data_size=10, category_proportion=0.5, cpu_cores=0)

    def test_scaled(self):
        p = ResourceProfile(1000, 0.8, bandwidth_mbps=100.0, compute_rate=200.0)
        half = p.scaled(0.5)
        assert half.data_size == 500
        assert half.bandwidth_mbps == pytest.approx(50.0)
        assert half.category_proportion == 0.8  # categories don't scale

    def test_scaled_clips_fraction(self):
        p = ResourceProfile(1000, 0.8)
        assert p.scaled(2.0).data_size == 1000


class TestDynamics:
    def test_static(self, rng):
        p = ResourceProfile(100, 0.5)
        assert StaticDynamics().availability(p, 3, rng) is p

    def test_uniform_bounds(self, rng):
        p = ResourceProfile(1000, 0.5)
        dyn = UniformAvailabilityDynamics(0.6)
        for t in range(50):
            avail = dyn.availability(p, t, rng)
            assert 0.58 * 1000 <= avail.data_size <= 1000

    def test_random_walk_is_smooth(self, rng):
        p = ResourceProfile(10000, 0.5)
        dyn = RandomWalkDynamics(step=0.05, min_fraction=0.3)
        fractions = [dyn.availability(p, t, rng).data_size / 10000 for t in range(30)]
        diffs = np.abs(np.diff(fractions))
        assert diffs.max() <= 0.051
        assert all(0.29 <= f <= 1.01 for f in fractions)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            UniformAvailabilityDynamics(0.0)
        with pytest.raises(ValueError):
            RandomWalkDynamics(step=0.0)


@pytest.fixture(scope="module")
def mult_solver():
    rule = MultiplicativeScore(2, 25.0)
    cost = LinearCost([4.0, 2.0])
    model = PrivateValueModel(UniformTheta(0.1, 1.0), n_nodes=20, k_winners=5)
    return EquilibriumSolver(rule, cost, model, [[0.01, 5.0], [0.05, 1.0]], grid_size=65)


class TestEdgeNode:
    def test_default_extractor(self):
        p = ResourceProfile(2500, 0.7)
        np.testing.assert_allclose(default_quality_extractor(p), [2.5, 0.7])

    def test_bid_capped_by_availability(self, mult_solver, rng):
        profile = ResourceProfile(800, 0.4)
        node = EdgeNode(0, 0.2, mult_solver, profile, StaticDynamics())
        bid = node.make_bid(1, rng)
        assert bid is not None
        assert bid.quality[0] <= 0.8 + 1e-9
        assert bid.quality[1] <= 0.4 + 1e-9

    def test_bid_is_individually_rational(self, mult_solver, rng):
        profile = ResourceProfile(3000, 0.9)
        for theta in (0.15, 0.5, 0.95):
            node = EdgeNode(1, theta, mult_solver, profile)
            bid = node.make_bid(1, rng)
            if bid is not None:
                assert node.profit_if_paid(bid.quality, bid.payment) >= -1e-9

    def test_abstains_when_margin_below_threshold(self, mult_solver, rng):
        profile = ResourceProfile(3000, 0.9)
        node = EdgeNode(2, 0.5, mult_solver, profile, min_margin=1e9)
        assert node.make_bid(1, rng) is None

    def test_dynamics_vary_bids(self, mult_solver):
        profile = ResourceProfile(3000, 0.9)
        node = EdgeNode(3, 0.2, mult_solver, profile, UniformAvailabilityDynamics(0.5))
        rng = np.random.default_rng(0)
        sizes = {node.make_bid(t, rng).quality[0] for t in range(10)}
        assert len(sizes) > 1


class TestNetwork:
    def test_transfer_time(self):
        link = Link(bandwidth_mbps=100.0, latency_s=0.0)
        # 1 MB over 100 Mbps = 8e6 bits / 1e8 bps = 0.08 s.
        assert link.transfer_time(1_000_000) == pytest.approx(0.08)

    def test_latency_added(self):
        link = Link(100.0, latency_s=0.01)
        assert link.transfer_time(0) == pytest.approx(0.01)

    def test_duplex(self):
        link = Link(100.0, latency_s=0.0)
        assert duplex_transfer_time(link, 1_000_000, 500_000) == pytest.approx(0.12)

    def test_validation(self):
        with pytest.raises(ValueError):
            Link(0.0)
        with pytest.raises(ValueError):
            Link(10.0).transfer_time(-1)


class TestComputeModel:
    def test_effective_rate_sublinear(self):
        cm = ComputeModel(base_rate=100.0, core_exponent=0.8)
        assert cm.effective_rate(1) == pytest.approx(100.0)
        assert cm.effective_rate(8) < 800.0
        assert cm.effective_rate(8) > 100.0

    def test_training_time(self):
        cm = ComputeModel(base_rate=100.0, core_exponent=1.0, overhead_s=1.0)
        assert cm.training_time(200, 1, 2) == pytest.approx(2.0)

    def test_more_cores_faster(self):
        cm = ComputeModel()
        assert cm.training_time(1000, 1, 8) < cm.training_time(1000, 1, 1)


class TestSimulatedCluster:
    def build(self, rng):
        specs = build_cluster_specs([500, 1000, 2000], rng)
        return SimulatedCluster(specs), specs

    def test_round_time_is_slowest_winner(self, rng):
        cluster, specs = self.build(rng)
        t_all = cluster.round_time([0, 1, 2], {0: 500, 1: 1000, 2: 2000}, 10_000, 1)
        per_node = [
            cluster.node_round_time(i, n, 10_000, 1)
            for i, n in [(0, 500), (1, 1000), (2, 2000)]
        ]
        assert t_all == pytest.approx(max(per_node) + cluster.aggregation_s)

    def test_empty_round(self, rng):
        cluster, _ = self.build(rng)
        assert cluster.round_time([], {}, 10_000, 1) == cluster.aggregation_s

    def test_more_samples_take_longer(self, rng):
        cluster, _ = self.build(rng)
        assert cluster.node_round_time(0, 2000, 10_000, 1) > cluster.node_round_time(
            0, 100, 10_000, 1
        )

    def test_quality_extractor_normalises(self):
        extractor = cluster_quality_extractor(8, 1000.0, 5000)
        profile = ResourceProfile(
            2500, 1.0, bandwidth_mbps=500.0, cpu_cores=4, compute_rate=100.0
        )
        np.testing.assert_allclose(extractor(profile), [0.5, 0.5, 0.5])

    def test_quality_extractor_clips(self):
        extractor = cluster_quality_extractor(4, 100.0, 1000)
        profile = ResourceProfile(
            5000, 1.0, bandwidth_mbps=900.0, cpu_cores=8, compute_rate=100.0
        )
        assert np.all(extractor(profile) <= 1.0)

    def test_duplicate_ids_rejected(self, rng):
        specs = build_cluster_specs([100, 100], rng)
        dup = [specs[0], specs[0]]
        with pytest.raises(ValueError):
            SimulatedCluster(dup)
