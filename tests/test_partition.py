"""Tests for non-IID partitioning and client data materialisation."""

import numpy as np
import pytest

from repro.fl.datasets import make_generator
from repro.fl.partition import (
    ClientData,
    dirichlet_specs,
    heterogeneous_specs,
    materialize_clients,
    shard_specs,
)


class TestHeterogeneousSpecs:
    def test_respects_size_range(self, rng):
        specs = heterogeneous_specs(50, 10, rng, size_range=(100, 1000))
        for s in specs:
            # Rounding of per-class proportions can add a few samples.
            assert 50 <= s.size <= 1100

    def test_respects_class_limits(self, rng):
        specs = heterogeneous_specs(40, 10, rng, min_classes=2, max_classes=4)
        for s in specs:
            assert 2 <= s.n_classes_present <= 4

    def test_sizes_are_heterogeneous(self, rng):
        specs = heterogeneous_specs(60, 10, rng, size_range=(100, 5000))
        sizes = np.array([s.size for s in specs])
        assert sizes.max() > 3 * sizes.min()

    def test_ids_sequential(self, rng):
        specs = heterogeneous_specs(5, 10, rng)
        assert [s.client_id for s in specs] == [0, 1, 2, 3, 4]

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            heterogeneous_specs(0, 10, rng)
        with pytest.raises(ValueError):
            heterogeneous_specs(5, 10, rng, size_range=(0, 10))
        with pytest.raises(ValueError):
            heterogeneous_specs(5, 10, rng, min_classes=5, max_classes=2)


class TestShardSpecs:
    def test_shards_per_client(self, rng):
        specs = shard_specs(20, 10, rng, shards_per_client=2, shard_size=100)
        for s in specs:
            assert s.size == 200
            assert s.n_classes_present <= 2

    def test_class_coverage_across_population(self, rng):
        specs = shard_specs(30, 10, rng, shards_per_client=2)
        seen = set()
        for s in specs:
            seen.update(c for c, k in s.class_counts.items() if k > 0)
        assert seen == set(range(10))


class TestDirichletSpecs:
    def test_low_alpha_concentrates(self, rng):
        specs = dirichlet_specs(40, 10, rng, alpha=0.1)
        # With alpha=0.1 most clients are dominated by few classes.
        dominated = sum(
            1
            for s in specs
            if max(s.class_counts.values()) / max(s.size, 1) > 0.5
        )
        assert dominated > 20

    def test_high_alpha_spreads(self, rng):
        specs = dirichlet_specs(40, 10, rng, alpha=100.0)
        mean_classes = np.mean([s.n_classes_present for s in specs])
        assert mean_classes > 8

    def test_no_empty_clients(self, rng):
        specs = dirichlet_specs(50, 10, rng, alpha=0.05, size_range=(5, 20))
        assert all(s.size >= 1 for s in specs)


class TestMaterialize:
    def test_counts_match_specs(self, rng):
        gen = make_generator("mnist_o", seed=0)
        specs = heterogeneous_specs(8, 10, rng, size_range=(20, 60))
        clients = materialize_clients(gen, specs, rng)
        for spec, client in zip(specs, clients):
            assert client.size == spec.size
            hist = client.class_histogram
            for cls, count in spec.class_counts.items():
                assert hist[cls] == count

    def test_category_proportion(self, rng):
        gen = make_generator("mnist_o", seed=0)
        specs = heterogeneous_specs(5, 10, rng, min_classes=3, max_classes=3)
        clients = materialize_clients(gen, specs, rng)
        for c in clients:
            assert c.category_proportion == pytest.approx(0.3)


class TestClientDataSubset:
    def make_client(self, rng, counts):
        gen = make_generator("mnist_o", seed=0)
        x, y = gen.sample_mixed(counts, rng)
        return ClientData(client_id=0, x=x, y=y, n_classes_total=10)

    def test_subset_size(self, rng):
        client = self.make_client(rng, {0: 30, 1: 30, 2: 40})
        x, y = client.subset(50, rng)
        assert x.shape[0] == 50 and y.shape[0] == 50

    def test_subset_keeps_all_classes(self, rng):
        client = self.make_client(rng, {0: 50, 1: 30, 7: 20})
        _, y = client.subset(10, rng)
        assert set(np.unique(y)) == {0, 1, 7}

    def test_subset_full_size_returns_everything(self, rng):
        client = self.make_client(rng, {0: 10, 1: 10})
        x, y = client.subset(20, rng)
        assert x.shape[0] == 20

    def test_subset_clamps_to_available(self, rng):
        client = self.make_client(rng, {0: 10})
        x, _ = client.subset(500, rng)
        assert x.shape[0] == 10

    def test_subset_at_least_one(self, rng):
        client = self.make_client(rng, {0: 10, 1: 10})
        x, _ = client.subset(0, rng)
        assert x.shape[0] >= 1
