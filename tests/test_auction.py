"""Unit tests for winner determination, payment rules and tie-breaking."""

import numpy as np
import pytest

from repro.core.auction import MultiDimensionalProcurementAuction
from repro.core.bids import Bid
from repro.core.psi import PsiSelection
from repro.core.scoring import AdditiveScore, QuasiLinearScoringRule


def make_bids(rows):
    """rows: (node_id, q1, q2, p)."""
    return [Bid(nid, np.array([q1, q2]), p) for nid, q1, q2, p in rows]


@pytest.fixture
def auction():
    return MultiDimensionalProcurementAuction(AdditiveScore([0.5, 0.5]), k_winners=2)


class TestWinnerDetermination:
    def test_top_k_by_score(self, auction, rng):
        bids = make_bids(
            [(0, 1.0, 1.0, 0.9), (1, 2.0, 2.0, 0.5), (2, 3.0, 3.0, 0.1), (3, 0.5, 0.5, 0.0)]
        )
        out = auction.run(bids, rng)
        assert out.winner_ids == [2, 1]  # scores: 2.9, 1.5, 0.1, 0.5

    def test_scores_sorted_descending(self, auction, rng):
        bids = make_bids([(i, float(i), float(i), 0.0) for i in range(5)])
        out = auction.run(bids, rng)
        scores = out.scores
        assert np.all(np.diff(scores) <= 1e-12)

    def test_fewer_bids_than_k(self, auction, rng):
        bids = make_bids([(0, 1.0, 1.0, 0.0)])
        out = auction.run(bids, rng)
        assert out.winner_ids == [0]

    def test_empty_bids(self, auction, rng):
        out = auction.run([], rng)
        assert out.winners == []
        assert out.total_payment == 0.0

    def test_duplicate_node_rejected(self, auction, rng):
        bids = make_bids([(0, 1.0, 1.0, 0.0), (0, 2.0, 2.0, 0.0)])
        with pytest.raises(ValueError):
            auction.run(bids, rng)

    def test_mixed_dimensionality_rejected(self, auction, rng):
        bids = [Bid(0, np.array([1.0, 2.0]), 0.0), Bid(1, np.array([1.0]), 0.0)]
        with pytest.raises(ValueError):
            auction.run(bids, rng)

    def test_tie_break_is_fair_coin(self):
        auction = MultiDimensionalProcurementAuction(AdditiveScore([1.0]), k_winners=1)
        wins = {0: 0, 1: 0}
        for seed in range(400):
            rng = np.random.default_rng(seed)
            bids = [Bid(0, np.array([1.0]), 0.5), Bid(1, np.array([1.0]), 0.5)]
            out = auction.run(bids, rng)
            wins[out.winner_ids[0]] += 1
        # Both tied nodes should win a non-trivial share.
        assert min(wins.values()) > 100


class TestPaymentRules:
    def test_first_score_pays_ask(self, auction, rng):
        bids = make_bids([(0, 4.0, 4.0, 1.0), (1, 2.0, 2.0, 0.3), (2, 1.0, 1.0, 0.2)])
        out = auction.run(bids, rng)
        for w in out.winners:
            assert w.charged_payment == pytest.approx(w.asked_payment)

    def test_second_score_matches_best_rejected(self, rng):
        auction = MultiDimensionalProcurementAuction(
            AdditiveScore([1.0]), k_winners=1, payment_rule="second_score"
        )
        bids = [Bid(0, np.array([5.0]), 1.0), Bid(1, np.array([4.0]), 1.0)]
        out = auction.run(bids, rng)
        # Winner 0 (score 4) is paid so its score equals loser's score 3:
        # p = s(q) - S_(2) = 5 - 3 = 2.
        assert out.winner_ids == [0]
        assert out.winners[0].charged_payment == pytest.approx(2.0)

    def test_second_score_never_below_ask(self, rng):
        auction = MultiDimensionalProcurementAuction(
            AdditiveScore([1.0]), k_winners=1, payment_rule="second_score"
        )
        bids = [Bid(0, np.array([5.0]), 4.9), Bid(1, np.array([4.99]), 0.0)]
        out = auction.run(bids, rng)
        # Node 1 wins (score 4.99 vs 0.1); charged = 4.99 - 0.1 >= its ask 0.
        winner = out.winners[0]
        assert winner.node_id == 1
        assert winner.charged_payment >= winner.asked_payment - 1e-12
        assert winner.charged_payment == pytest.approx(4.99 - 0.1)

    def test_second_score_weakly_exceeds_first_score(self, rng):
        base_bids = make_bids(
            [(0, 4.0, 4.0, 1.0), (1, 3.0, 3.0, 0.6), (2, 2.0, 2.0, 0.4), (3, 1.0, 1.0, 0.1)]
        )
        first = MultiDimensionalProcurementAuction(AdditiveScore([0.5, 0.5]), 2)
        second = MultiDimensionalProcurementAuction(
            AdditiveScore([0.5, 0.5]), 2, payment_rule="second_score"
        )
        out1 = first.run(list(base_bids), np.random.default_rng(0))
        out2 = second.run(list(base_bids), np.random.default_rng(0))
        assert out2.total_payment >= out1.total_payment - 1e-12

    def test_unknown_rule_rejected(self):
        with pytest.raises(ValueError):
            MultiDimensionalProcurementAuction(
                AdditiveScore([1.0]), 1, payment_rule="third_score"
            )


class TestOutcome:
    def test_aggregator_profit_eq6(self, auction, rng):
        bids = make_bids([(0, 4.0, 4.0, 1.0), (1, 2.0, 2.0, 0.5), (2, 1.0, 1.0, 0.1)])
        out = auction.run(bids, rng)
        utility = AdditiveScore([0.5, 0.5])
        expected = sum(utility.value(w.quality) - w.charged_payment for w in out.winners)
        assert out.aggregator_profit(utility) == pytest.approx(expected)

    def test_total_payment(self, auction, rng):
        bids = make_bids([(0, 4.0, 4.0, 1.0), (1, 2.0, 2.0, 0.5), (2, 1.0, 1.0, 0.1)])
        out = auction.run(bids, rng)
        assert out.total_payment == pytest.approx(1.5)

    def test_ranks_assigned_in_order(self, auction, rng):
        bids = make_bids([(i, float(10 - i), 1.0, 0.0) for i in range(5)])
        out = auction.run(bids, rng)
        assert [w.rank for w in out.winners] == [0, 1]

    def test_normalizing_wrapper(self, rng):
        wrapper = QuasiLinearScoringRule(
            AdditiveScore([0.5, 0.5]), lower=[0.0, 0.0], upper=[10.0, 1.0]
        )
        auction = MultiDimensionalProcurementAuction(wrapper, k_winners=1)
        bids = [Bid(0, np.array([10.0, 1.0]), 0.2), Bid(1, np.array([5.0, 0.5]), 0.0)]
        out = auction.run(bids, rng)
        assert out.winner_ids == [0]  # 1.0 - 0.2 = 0.8 > 0.5

    def test_psi_selection_plugged_in(self, rng):
        auction = MultiDimensionalProcurementAuction(
            AdditiveScore([1.0]), k_winners=2, selection=PsiSelection(0.5)
        )
        bids = [Bid(i, np.array([float(10 - i)]), 0.0) for i in range(6)]
        out = auction.run(bids, rng)
        assert len(out.winners) == 2
        assert len(set(out.winner_ids)) == 2
