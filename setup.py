"""Shim for legacy editable installs on environments without `wheel`.

All real metadata lives in pyproject.toml; this file only enables
``pip install -e . --no-use-pep517`` (and ``python setup.py develop``) on
offline boxes whose setuptools cannot build PEP 660 editable wheels.
"""

from setuptools import setup

setup()
