"""Verify every theorem and proposition of the paper, numerically.

Runs the checks in :mod:`repro.analysis.theory_report` on a small auction
environment and prints the verdict table: Che's Theorems 1-2, the paper's
Theorems 1-5 and Propositions 1-4, plus individual rationality.

Run:  python examples/theory_verification.py     (~20 s)
"""

from repro.analysis import report, verify_all

checks = verify_all(seed=0)
print(report(checks))

failed = [c for c in checks if not c.passed]
if failed:
    raise SystemExit(f"{len(failed)} check(s) FAILED")
print(f"\nall {len(checks)} theoretical results verified")
