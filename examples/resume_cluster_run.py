"""Crash-and-resume a cluster testbed run through the experiment store.

Long Section V-C runs (hundreds of CIFAR-10 rounds on the simulated
32-machine cluster) should survive a crash.  This example runs the
``cluster_cifar10`` preset (shrunk to demo scale) into an
:class:`~repro.api.ExperimentStore`, kills the run after two rounds,
resumes it in a *fresh engine* — as a new process would — and verifies
the resumed histories are bitwise-identical to an uninterrupted run.

Run:  python examples/resume_cluster_run.py      (~60 s)
"""

import tempfile
from pathlib import Path

from repro.api import (
    ExperimentStore,
    FMoreEngine,
    IncompleteRunError,
    Scenario,
    scenario_hash,
)
from repro.sim.reporting import ascii_table

scenario = Scenario.from_preset(
    "cluster_cifar10",
    seeds=(3,),
    n_rounds=6,
    size_range=(150, 900),
    test_per_class=25,
    model_width=0.18,
    grid_size=65,
)
store = ExperimentStore(Path(tempfile.mkdtemp()) / "cluster-store")
print(
    f"cluster scenario {scenario.name!r} "
    f"(content address {scenario_hash(scenario)[:12]}…)\n"
    f"store: {store.root}\n"
)

# ----------------------------------------------------------------------
# 1. The "crash": checkpoint every round, stop after round 2 of each cell.
#    (A real crash between checkpoints loses at most checkpoint_every
#    rounds; --stop-after is the controlled stand-in so the demo is
#    deterministic.)
# ----------------------------------------------------------------------
try:
    FMoreEngine().run(scenario, store=store, checkpoint_every=1, stop_after=2)
except IncompleteRunError as exc:
    print(f"interrupted: {exc}\n")

for scheme in scenario.schemes:
    checkpoint = store.load_checkpoint(scenario, scheme, 3)
    print(
        f"  {scheme}: checkpoint at round {checkpoint.round_index}, "
        f"{len(checkpoint.weights)} weight arrays, "
        f"{len(checkpoint.policy_states)} policy state(s)"
    )

# ----------------------------------------------------------------------
# 2. The resume: a fresh engine (think: a new process after the crash)
#    picks every cell up from its checkpoint and completes the run.
# ----------------------------------------------------------------------
print("\nresuming…")
resumed = FMoreEngine().run(scenario, store=store, resume=True)

# ----------------------------------------------------------------------
# 3. Proof: an uninterrupted run of the same scenario is bitwise-equal.
# ----------------------------------------------------------------------
uninterrupted = FMoreEngine().run(scenario)
assert resumed.histories == uninterrupted.histories
print("resumed histories are bitwise-identical to the uninterrupted run\n")

frame = resumed.metrics()
rows = [
    (
        scheme,
        round(resumed.history(scheme).final_accuracy, 3),
        round(resumed.history(scheme).cumulative_seconds[-1], 1),
        round(resumed.history(scheme).total_payment, 2),
    )
    for scheme in scenario.schemes
]
print(ascii_table(["scheme", "final acc", "sim seconds", "payment"], rows))
print(
    f"\nmetrics frame: {len(frame)} rows x {len(frame.columns)} columns "
    "(frame.to_csv('cluster.csv') exports it)"
)

# A second run against the store computes nothing: every cell's manifest
# already exists, so this returns instantly with identical results.
again = FMoreEngine().run(scenario, store=store)
assert again.histories == resumed.histories
print("re-run against the store reused every manifest (no training ran)")
