"""Quickstart: one round of FMore, end to end, in ~40 lines of API calls.

Builds the paper's simulation game (multiplicative scoring over data size
and category diversity, linear private costs, uniform types), computes the
Nash-equilibrium bid of a few nodes, runs winner determination and prints
what everyone gets — the walk-through of Section III-B with equilibrium
bidders instead of hand-picked numbers.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    Bid,
    EquilibriumSolver,
    LinearCost,
    MultiDimensionalProcurementAuction,
    MultiplicativeScore,
    PrivateValueModel,
    UniformTheta,
)

rng = np.random.default_rng(42)

# --- The game the aggregator announces (common knowledge) ----------------
# s(q1, q2) = 25 * q1 * q2 over (data size in kilosamples, category share);
# each node's private cost is theta * (4 q1 + 2 q2) with theta ~ U[0.1, 1].
rule = MultiplicativeScore(n_dimensions=2, scale=25.0)
cost = LinearCost([4.0, 2.0])
game = PrivateValueModel(UniformTheta(0.1, 1.0), n_nodes=10, k_winners=3)
solver = EquilibriumSolver(rule, cost, game, [[0.01, 5.0], [0.05, 1.0]])

# --- Bid collection: every node plays its equilibrium strategy -----------
thetas = game.sample_types(rng)
bids = []
print("node  theta   quality(q1,q2)        asked payment")
for i, theta in enumerate(thetas):
    quality, payment = solver.bid(float(theta))
    bids.append(Bid(i, quality, payment))
    print(f"{i:4d}  {theta:.3f}  ({quality[0]:.2f}, {quality[1]:.2f})   {payment:9.3f}")

# --- Winner determination: top-K scores, first-score payments ------------
auction = MultiDimensionalProcurementAuction(rule, k_winners=game.k_winners)
outcome = auction.run(bids, rng)

print("\nwinners (rank, node, score, paid):")
for w in outcome.winners:
    profit = w.charged_payment - cost.cost(w.quality, float(thetas[w.node_id]))
    print(
        f"  #{w.rank}  node {w.node_id}  score={w.score:8.3f}  "
        f"paid={w.charged_payment:7.3f}  node profit={profit:6.3f}"
    )
print(f"\naggregator pays {outcome.total_payment:.3f} in total")
print(f"aggregator profit (Eq. 6, U = s): {outcome.aggregator_profit(rule):.3f}")

# Sanity: the low-theta (cheap) nodes should be the ones winning.
winner_thetas = sorted(float(thetas[w]) for w in outcome.winner_ids)
print(f"winning thetas: {[round(t, 3) for t in winner_thetas]}")
print(f"all thetas    : {sorted(round(float(t), 3) for t in thetas)}")
