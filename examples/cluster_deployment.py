"""The "real-world" experiment: FMore on a simulated 32-machine cluster.

Recreates Section V-C: one aggregator and 31 heterogeneous edge nodes
(1-8 CPU cores, 50-1000 Mbps links) training CIFAR-10, with the additive
scoring rule S = 0.4*compute + 0.3*bandwidth + 0.3*data - p.  Prints the
accuracy and wall-clock trajectories of FMore vs RandFL and the time-to-
accuracy comparison of Fig. 13.

Run:  python examples/cluster_deployment.py      (~60 s)
"""

from repro.api import FMoreEngine, Scenario
from repro.fl.metrics import speedup_percent, time_to_accuracy
from repro.sim.reporting import ascii_table, series_table

scenario = Scenario.from_preset(
    "cluster_cifar10",
    seeds=(3,),
    n_rounds=10,
    size_range=(150, 900),
    test_per_class=25,
    model_width=0.18,
)
print(
    f"simulated cluster: {scenario.n_clients} nodes, K={scenario.k_winners}, "
    f"dataset={scenario.dataset}, scoring weights={scenario.scoring['weights']}"
)
results = FMoreEngine().run(scenario).comparison()

rounds = list(range(1, scenario.n_rounds + 1))
print()
print(
    series_table(
        "accuracy per round",
        "round",
        rounds,
        {s: [round(a, 3) for a in h.accuracies] for s, h in results.items()},
    )
)
print()
print(
    series_table(
        "cumulative simulated seconds",
        "round",
        rounds,
        {s: [round(t, 1) for t in h.cumulative_seconds] for s, h in results.items()},
    )
)

target = 0.2
rows = []
for scheme, h in results.items():
    rows.append(
        (
            scheme,
            round(h.final_accuracy, 3),
            time_to_accuracy(h.accuracies, h.cumulative_seconds, target),
            round(h.cumulative_seconds[-1], 1),
        )
    )
print()
print(
    ascii_table(
        ["scheme", "final accuracy", f"seconds to {target:.0%}", "total seconds"],
        rows,
        title="cluster summary",
    )
)
reduction = speedup_percent(
    results["RandFL"].cumulative_seconds[-1], results["FMore"].cumulative_seconds[-1]
)
print(f"\ntotal-time reduction FMore vs RandFL: {reduction:.1f}% "
      f"(paper, real hardware: 38.4%)")
