"""Proposition 4 in practice: steering the procured resource mix.

Two views of aggregator guidance:

1. **Closed form** — the Lagrangian optimum of Proposition 4, its ratio
   law, and the inverse map (which exponents alpha buy a 2:1 data mix?).
2. **A live guidance experiment** — the same knob driven *per round*
   through the declarative API: a ``guidance`` round policy retunes the
   Cobb-Douglas exponents toward a target mix every R rounds, and the
   streaming session surface shows each ``alpha_update`` action as it
   happens.  Everything is Scenario JSON — no assembly code.

Run:  python examples/aggregator_guidance.py
"""

import numpy as np

from repro.api import FMoreEngine, Scenario
from repro.core import (
    alphas_for_target_mix,
    optimal_quality_mix,
    quality_ratio,
)
from repro.sim.reporting import ascii_table

RESOURCES = ("data", "categories")
BETAS = [0.67, 0.33]          # market cost coefficients (estimated)
THETA = 0.5                   # typical private cost parameter
BUDGET = 12.0                 # the aggregator's per-round budget c0

# --- Part 1: the closed form ----------------------------------------------
alphas = [0.6, 0.4]
mix = optimal_quality_mix(alphas, BETAS, THETA, BUDGET)
rows = [
    (name, round(float(a), 3), round(float(b), 3), round(float(q), 3), round(float(s), 3))
    for name, a, b, q, s in zip(
        RESOURCES, mix.alphas, mix.betas, mix.quality, mix.spend_shares
    )
]
print(
    ascii_table(
        ["resource", "alpha", "beta", "optimal q*", "budget share"],
        rows,
        title=f"Proposition 4 optimal mix (theta={THETA}, budget={BUDGET})",
    )
)
lhs = mix.quality[0] / mix.quality[1]
rhs = quality_ratio(mix.alphas[0], mix.alphas[1], mix.betas[0], mix.betas[1])
print(f"\nratio law: q*_data/q*_categories = {lhs:.4f} (formula: {rhs:.4f})")

target = np.array([2.0, 1.0])
needed = alphas_for_target_mix(target, BETAS)
print(f"inverse map: mix 2:1 needs alphas = {[round(float(a), 3) for a in needed]}")

# --- Part 2: the guidance experiment, declaratively -----------------------
# A Cobb-Douglas aggregator (the utility family Proposition 4 analyses)
# with a `guidance` round policy: every 2 rounds, compare the procured mix
# against the target and retune the exponents.  The whole experiment is
# one JSON-round-trippable Scenario.
scenario = Scenario.from_preset(
    "smoke",
    "mnist_o",
    schemes=("FMore",),
    seeds=(0,),
    n_rounds=6,
    grid_size=33,
).with_(
    scoring={"name": "cobb_douglas", "weights": [0.5, 0.5], "scale": 25.0},
    policies={
        "guidance": {
            "target_mix": [2.0, 1.0],
            "betas": BETAS,
            "every": 2,
            "gain": 0.5,
        }
    },
)
assert Scenario.from_json(scenario.to_json()) == scenario  # pure JSON

print("\nstreaming the guidance run (alpha retuned every 2 rounds):")
engine = FMoreEngine()
for event in engine.session(scenario, "FMore", seed=0):
    line = (
        f"  round {event.round_index}: acc={event.accuracy:.3f} "
        f"winners={event.winner_ids}"
    )
    for action in event.actions:
        if action.kind == "alpha_update":
            alphas_now = [round(a, 3) for a in action.payload["alphas"]]
            observed = [round(v, 3) for v in action.payload["observed_mix"]]
            line += f"\n      alpha -> {alphas_now}  (observed mix {observed})"
    print(line)

print(
    "\nThe same experiment runs from the CLI:\n"
    "  python -m repro run --preset smoke --set schemes=FMore \\\n"
    "      --set 'scoring={\"name\":\"cobb_douglas\",\"weights\":[0.5,0.5],\"scale\":25.0}' \\\n"
    "      --policy 'guidance={\"target_mix\":[2.0,1.0],\"every\":2}'"
)
