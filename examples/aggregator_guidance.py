"""Proposition 4 in practice: steering the procured resource mix.

An aggregator that values data, bandwidth and compute with a Cobb-Douglas
utility can tune the exponents alpha to procure any target proportion of
resources.  This example: (1) shows the closed-form optimal mix for a given
alpha, (2) solves the inverse problem — which alpha buys twice as much data
as bandwidth? — and (3) verifies both against the numerical Lagrangian and
the q_i/q_j ratio law.

Run:  python examples/aggregator_guidance.py
"""

import numpy as np

from repro.core import (
    alphas_for_target_mix,
    optimal_quality_mix,
    quality_ratio,
    solve_mix_numerically,
)
from repro.sim.reporting import ascii_table

RESOURCES = ("data", "bandwidth", "compute")
BETAS = [0.2, 0.3, 0.5]       # market cost coefficients (estimated)
THETA = 0.5                   # typical private cost parameter
BUDGET = 12.0                 # the aggregator's per-round budget c0

# --- Forward: a chosen alpha -> the mix it procures -----------------------
alphas = [0.5, 0.3, 0.2]
mix = optimal_quality_mix(alphas, BETAS, THETA, BUDGET)
rows = [
    (name, a, b, round(q, 3), round(share, 3))
    for name, a, b, q, share in zip(
        RESOURCES, mix.alphas, mix.betas, mix.quality, mix.spend_shares
    )
]
print(
    ascii_table(
        ["resource", "alpha", "beta", "optimal q*", "budget share"],
        rows,
        title=f"Proposition 4 optimal mix (theta={THETA}, budget={BUDGET})",
    )
)
print("\nnote: budget share equals alpha — the Cobb-Douglas signature.")

# --- The ratio law q*_i / q*_j = (alpha_i/alpha_j) (beta_j/beta_i) --------
for i, j in ((0, 1), (0, 2)):
    lhs = mix.quality[i] / mix.quality[j]
    rhs = quality_ratio(mix.alphas[i], mix.alphas[j], mix.betas[i], mix.betas[j])
    print(f"q*_{RESOURCES[i]}/q*_{RESOURCES[j]} = {lhs:.4f}  (ratio law: {rhs:.4f})")

# --- Inverse: which alphas procure data : bandwidth : compute = 2 : 1 : 1?
target = np.array([2.0, 1.0, 1.0])
alphas_needed = alphas_for_target_mix(target, BETAS)
achieved = optimal_quality_mix(alphas_needed, BETAS, THETA, BUDGET).quality
print(f"\ntarget mix 2:1:1  ->  alphas = {[round(float(a), 3) for a in alphas_needed]}")
print(f"achieved mix      ->  {[round(float(q / achieved[1]), 3) for q in achieved]}")

# --- Cross-check against the numerical Lagrangian -------------------------
numeric = solve_mix_numerically(mix.alphas, mix.betas, THETA, BUDGET)
err = float(np.max(np.abs(numeric - mix.quality) / mix.quality))
print(f"\nclosed form vs SLSQP Lagrangian: max relative deviation {err:.2e}")
