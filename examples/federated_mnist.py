"""FMore vs RandFL vs FixFL on the synthetic MNIST-O federated task.

Reproduces the Fig-4 experiment at a small, laptop-friendly scale: 20 edge
nodes with heterogeneous non-IID data, an auction before every round, and
the accuracy trajectories of the three selection schemes printed side by
side.

Run:  python examples/federated_mnist.py        (~30 s)
"""

from repro.analysis import headline_metrics, summarize_schemes
from repro.api import FMoreEngine, Scenario
from repro.sim.reporting import ascii_table, series_table

scenario = Scenario.from_preset(
    "bench",
    "mnist_o",
    schemes=("FMore", "RandFL", "FixFL"),
    seeds=(7,),
).with_(
    name="example-mnist",
    n_clients=20,
    k_winners=5,
    n_rounds=10,
)
print(f"dataset={scenario.dataset}  N={scenario.n_clients}  "
      f"K={scenario.k_winners}  rounds={scenario.n_rounds}")
print("running FMore / RandFL / FixFL on a shared federation...\n")

results = FMoreEngine().run(scenario).comparison()

print(
    series_table(
        "accuracy per round",
        "round",
        list(range(1, scenario.n_rounds + 1)),
        {name: [round(a, 3) for a in h.accuracies] for name, h in results.items()},
    )
)

target = 0.7
rows = [
    (s.scheme, s.final_accuracy, s.rounds_to_target, s.total_payment)
    for s in summarize_schemes(results, target_accuracy=target)
]
print()
print(
    ascii_table(
        ["scheme", "final accuracy", f"rounds to {target:.0%}", "total payment"],
        rows,
        title="summary",
    )
)

metrics = headline_metrics(results, target_accuracy=target)
print(
    f"\nFMore vs RandFL: "
    f"round reduction = {metrics.round_reduction_pct and round(metrics.round_reduction_pct, 1)}%, "
    f"accuracy improvement = {metrics.accuracy_improvement_pct:+.1f}%"
)
print("(paper, full scale: 50% fewer rounds on MNIST-O, +28% accuracy on LSTM)")
