"""The declarative API tour: Scenario specs, registries, the engine.

Shows the three things the `repro.api` surface adds on top of the classic
builders:

1. **Declarative scenarios** — a frozen spec that round-trips through
   JSON, so experiments live in files and diff cleanly.
2. **Registry-driven components** — swap the type prior (or scoring rule,
   cost family, selection policy) by *name* without touching assembly
   code.
3. **Solver caching + batched bidding** — one engine reuses the
   equilibrium grid across seeds and schemes, and each auction round
   prices all N bids in one vectorised call.

Run:  python examples/scenario_engine.py        (~20 s)
"""

from repro.api import FMoreEngine, Scenario
from repro.core.registry import COST_MODELS, SCORING_RULES, THETA_DISTRIBUTIONS
from repro.sim.reporting import series_table

# --- 1. A declarative scenario, JSON round-trippable ----------------------
scenario = Scenario.from_preset(
    "smoke",
    "mnist_o",
    schemes=("FMore", "RandFL"),
    seeds=(0, 1, 2),
).with_(name="api-tour", n_rounds=4)

spec = scenario.to_json()
assert Scenario.from_json(spec) == scenario
print(f"scenario '{scenario.name}': {len(spec)} bytes of JSON, "
      f"{len(scenario.seeds)} seeds x {len(scenario.schemes)} schemes")
print(f"registered scoring rules: {SCORING_RULES.names()}")
print(f"registered cost models:   {COST_MODELS.names()}")
print(f"registered type priors:   {THETA_DISTRIBUTIONS.names()}\n")

# --- 2. One engine, one equilibrium grid for the whole plan ---------------
engine = FMoreEngine()
result = engine.run(scenario)
print(f"solver cache after the run: {engine.cache_misses} build(s), "
      f"{engine.cache_hits} reuse(s)\n")

stats = result.averaged()
print(
    series_table(
        "mean accuracy per round (3 seeds)",
        "round",
        list(range(1, scenario.n_rounds + 1)),
        {s: [round(float(a), 3) for a in st["accuracy"].mean] for s, st in stats.items()},
    )
)

# --- 3. Swap a component by name: a cost-skewed market ---------------------
# Most nodes cheap (Beta(2, 5) types), same game otherwise: one field edit.
skewed = scenario.with_(
    name="api-tour-skewed",
    theta={"name": "scaled_beta", "lo": 0.1, "hi": 1.0, "a": 2.0, "b": 5.0},
    schemes=("FMore",),
    seeds=(0,),
)
skewed_result = engine.run(skewed)
history = skewed_result.history("FMore")
print(
    f"\nskewed market (scaled_beta types): final accuracy "
    f"{history.final_accuracy:.3f}, total payment {history.total_payment:.2f}"
)
print(f"solver cache now: {engine.cache_misses} build(s) "
      f"(the skewed game is a different (s, c, F, N, K) key)")
